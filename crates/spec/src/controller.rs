//! Online per-request speculation controller (ROADMAP item 3).
//!
//! SpecInfer's evaluation fixes one expansion config for a whole run, and
//! its future-work section names learned/adaptive tree expansion as an
//! open problem: a shape that pays off on an easy, predictable stretch of
//! a request wastes verify rows on a hard one, and vice versa. This
//! module closes the loop per request: each session tracks an EWMA of its
//! accepted-prefix length and of chosen-branch *survival* (accepted
//! tokens relative to the depth the draft offered), and every iteration
//! picks the next draft shape from a ladder
//!
//! ```text
//! incremental ⇄ sequence(2) ⇄ sequence(4) ⇄ dynamic(small) ⇄ dynamic(paper) ⇄ paper_default
//! ```
//!
//! climbing only after `hysteresis` consecutive high-survival steps and
//! descending after the same number of low-survival ones, so a single
//! lucky (or unlucky) step never flips the shape. On the stochastic
//! ladder the best-first dynamic rungs are replaced by sampled static
//! trees: multi-step speculative sampling's exactness guarantee
//! (Theorem 4.2) requires draft tokens *sampled* from the SSM
//! distribution, which deterministic best-first expansion does not do.
//!
//! The controller also routes each draft to one SSM from the
//! heterogeneous pool, SPIN-style: it keeps a per-SSM EWMA of accepted
//! tokens per unit of draft FLOP and picks the current best, with a
//! deterministic round-robin probe every `probe_period`-th speculative
//! step so a temporarily-unlucky SSM can win its slot back. Everything
//! here is a pure function of observed step statistics — no clocks, no
//! unseeded entropy — so runs replay bit-for-bit (the determinism lint
//! rule enforces exactly this; see the `adaptive_spec_bad` fixture).

use specinfer_model::ModelConfig;
use specinfer_tokentree::ExpansionConfig;

use crate::dynamic::DynamicExpansionConfig;

/// One rung of the speculation ladder: the draft shape a session uses
/// for its next iteration.
#[derive(Debug, Clone, PartialEq)]
pub enum DraftShape {
    /// No speculation: one ordinary decode step.
    Incremental,
    /// A single sampled/greedy chain of `m` tokens (`ExpansionConfig::sequence`).
    Sequence(usize),
    /// Best-first dynamic expansion under a node/depth budget (greedy
    /// decode only).
    Dynamic(DynamicExpansionConfig),
    /// A fixed ⟨k₁…k_m⟩ expansion.
    Tree(ExpansionConfig),
}

impl DraftShape {
    /// Worst-case number of speculated nodes this shape can draft
    /// (excluding the re-fed root).
    pub fn node_count(&self) -> usize {
        match self {
            DraftShape::Incremental => 0,
            DraftShape::Sequence(m) => *m,
            DraftShape::Dynamic(c) => c.max_nodes,
            DraftShape::Tree(e) => e.node_count(),
        }
    }

    /// Deepest accepted prefix this shape can offer — the denominator of
    /// the survival statistic.
    pub fn offered_depth(&self) -> usize {
        match self {
            DraftShape::Incremental => 0,
            DraftShape::Sequence(m) => *m,
            DraftShape::Dynamic(c) => c.max_depth,
            DraftShape::Tree(e) => e.depth(),
        }
    }

    /// KV rows one iteration with this shape appends before compaction
    /// (root + speculated nodes; 1 for incremental).
    pub fn speculation_rows(&self) -> usize {
        self.node_count() + 1
    }
}

/// Tuning constants for the adaptive controller. All fields are plain
/// data so configs replay deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// EWMA smoothing factor for accepted-length / survival / SSM-score
    /// statistics (weight of the newest observation).
    pub ewma_alpha: f32,
    /// Survival fraction at or above which a step counts toward climbing.
    pub up_threshold: f32,
    /// Survival fraction at or below which a step counts toward descending.
    pub down_threshold: f32,
    /// Consecutive qualifying steps required before the rung moves.
    pub hysteresis: usize,
    /// Every `probe_period`-th speculative step round-robins the SSM pool
    /// (and, parked at incremental, retries the first speculative rung).
    pub probe_period: usize,
    /// Ladder rung a fresh session starts on.
    pub initial_rung: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            ewma_alpha: 0.4,
            up_threshold: 0.65,
            down_threshold: 0.2,
            hysteresis: 2,
            probe_period: 12,
            initial_rung: 2,
        }
    }
}

impl AdaptiveConfig {
    /// KV rows per iteration an admission controller should charge a
    /// *fresh* adaptive request: the initial rung's shape cost, before
    /// any acceptance feedback exists. Live requests are charged their
    /// controller's current rung instead
    /// ([`SpecController::current_rows`]).
    pub fn admission_rows(&self, greedy: bool) -> usize {
        let ladder = ladder_for(greedy);
        let rung = self.initial_rung.min(ladder.len() - 1);
        match ladder.get(rung) {
            Some(shape) => shape.speculation_rows(),
            None => unreachable!("initial rung clamped into the ladder"),
        }
    }
}

/// One controller decision: the shape and SSM a session's next iteration
/// will draft with. Returned by [`SpecController::decide`] and fed back
/// via [`SpecController::observe`] once the step's acceptance is known.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDecision {
    /// Ladder rung the shape came from.
    pub rung: usize,
    /// The draft shape to use this iteration.
    pub shape: DraftShape,
    /// SSM pool index to draft with (0 when the shape is incremental).
    pub ssm: usize,
    /// Whether this was a periodic probe rather than the greedy choice.
    pub probe: bool,
}

/// Aggregated controller telemetry for `ServeReport` histograms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControllerSnapshot {
    /// Decisions made per ladder rung (index = rung).
    pub rung_decisions: Vec<usize>,
    /// Drafts routed per SSM pool index.
    pub ssm_routes: Vec<usize>,
    /// How many decisions were periodic probes.
    pub probes: usize,
    /// Rung the controller ended on.
    pub final_rung: usize,
    /// Final EWMA of accepted speculated tokens per step.
    pub accept_ewma: f32,
    /// Final EWMA of chosen-branch survival.
    pub survival_ewma: f32,
}

impl ControllerSnapshot {
    /// Merges another snapshot's counters into this one (histograms are
    /// element-wise sums; EWMAs keep the larger sample's final value by
    /// simply keeping `self`'s).
    pub fn absorb(&mut self, other: &ControllerSnapshot) {
        if self.rung_decisions.len() < other.rung_decisions.len() {
            self.rung_decisions.resize(other.rung_decisions.len(), 0);
        }
        for (acc, v) in self.rung_decisions.iter_mut().zip(&other.rung_decisions) {
            *acc += v;
        }
        if self.ssm_routes.len() < other.ssm_routes.len() {
            self.ssm_routes.resize(other.ssm_routes.len(), 0);
        }
        for (acc, v) in self.ssm_routes.iter_mut().zip(&other.ssm_routes) {
            *acc += v;
        }
        self.probes += other.probes;
    }
}

/// Relative cost of one draft step on an SSM with config `cfg`, in
/// (approximate) FLOPs: attention/MLP projections per layer plus the
/// unembedding. Used to normalize acceptance into accepted-per-draft-FLOP
/// so a small cheap SSM can beat a slightly-more-accurate expensive one.
pub fn draft_flop_weight(cfg: &ModelConfig) -> f32 {
    let d = cfg.d_model as f32;
    let per_layer = 4.0 * d * d + 3.0 * d * cfg.d_ff as f32;
    cfg.n_layers as f32 * per_layer + d * cfg.vocab_size as f32
}

/// The speculation ladder, rung 0 (incremental) to the paper's default
/// schedule. The greedy ladder includes best-first dynamic rungs; the
/// stochastic ladder swaps them for sampled static trees of comparable
/// budget, because MSS exactness (Theorem 4.2) requires draft tokens
/// *sampled* from the SSM distribution, which deterministic best-first
/// expansion does not do.
fn ladder_for(greedy: bool) -> Vec<DraftShape> {
    if greedy {
        vec![
            DraftShape::Incremental,
            DraftShape::Sequence(2),
            DraftShape::Sequence(4),
            DraftShape::Dynamic(DynamicExpansionConfig {
                max_nodes: 10,
                max_depth: 5,
                prob_threshold: 1e-3,
                max_children: 3,
            }),
            DraftShape::Dynamic(DynamicExpansionConfig::default()),
            DraftShape::Tree(ExpansionConfig::paper_default()),
        ]
    } else {
        vec![
            DraftShape::Incremental,
            DraftShape::Sequence(2),
            DraftShape::Sequence(4),
            DraftShape::Tree(ExpansionConfig::new(vec![2, 1, 1, 1])),
            DraftShape::Tree(ExpansionConfig::new(vec![2, 2, 1, 1])),
            DraftShape::Tree(ExpansionConfig::paper_default()),
        ]
    }
}

/// The per-session adaptive speculation controller.
#[derive(Debug, Clone)]
pub struct SpecController {
    cfg: AdaptiveConfig,
    ladder: Vec<DraftShape>,
    rung: usize,
    accept_ewma: f32,
    survival_ewma: f32,
    up_streak: usize,
    down_streak: usize,
    /// Speculative (non-incremental) decisions made so far — drives the
    /// round-robin probe schedule.
    spec_decisions: usize,
    /// Decisions made while parked on the incremental rung — drives the
    /// periodic retry of the first speculative rung.
    parked_decisions: usize,
    ssm_flop: Vec<f32>,
    ssm_score: Vec<f32>,
    rung_decisions: Vec<usize>,
    ssm_routes: Vec<usize>,
    probes: usize,
}

impl SpecController {
    /// Builds a controller for a session decoding greedily or not, with
    /// one draft-FLOP weight per pool SSM (see [`draft_flop_weight`]).
    ///
    /// # Panics
    ///
    /// Panics if the SSM pool is empty.
    pub fn new(cfg: AdaptiveConfig, greedy: bool, ssm_flops: Vec<f32>) -> Self {
        assert!(!ssm_flops.is_empty(), "controller needs at least one SSM");
        let ladder = ladder_for(greedy);
        let rung = cfg.initial_rung.min(ladder.len() - 1);
        let n_ssms = ssm_flops.len();
        let rungs = ladder.len();
        SpecController {
            cfg,
            ladder,
            rung,
            accept_ewma: 0.0,
            survival_ewma: 0.0,
            up_streak: 0,
            down_streak: 0,
            spec_decisions: 0,
            parked_decisions: 0,
            ssm_flop: ssm_flops,
            // Start every SSM at an identical neutral score so the first
            // routing decisions are probe-driven, not init-driven.
            ssm_score: vec![0.0; n_ssms],
            rung_decisions: vec![0; rungs],
            ssm_routes: vec![0; n_ssms],
            probes: 0,
        }
    }

    /// Worst-case speculation rows over the whole ladder — what a
    /// budgeted session must reserve so adaptive shape changes can never
    /// overflow a right-sized KV slab.
    pub fn worst_case_rows(&self) -> usize {
        let mut worst = 1;
        for shape in &self.ladder {
            worst = worst.max(shape.speculation_rows());
        }
        worst
    }

    /// KV rows the *current* rung's shape appends per iteration — the
    /// occupancy cost `admit_budgeted` should charge this request now.
    pub fn current_rows(&self) -> usize {
        self.shape_at(self.rung).speculation_rows()
    }

    /// The shape the controller would pick right now, without committing
    /// to a decision.
    pub fn current_shape(&self) -> &DraftShape {
        self.shape_at(self.rung)
    }

    fn shape_at(&self, rung: usize) -> &DraftShape {
        match self.ladder.get(rung) {
            Some(s) => s,
            None => unreachable!("rung {rung} outside ladder of {}", self.ladder.len()),
        }
    }

    /// Picks the draft shape and SSM for the next iteration.
    pub fn decide(&mut self) -> AdaptiveDecision {
        let (rung, mut probe) = if self.rung == 0 {
            // Parked at incremental: periodically retry the first
            // speculative rung so a request that turned predictable can
            // climb back out.
            self.parked_decisions += 1;
            if self.parked_decisions % self.cfg.probe_period == 0 && self.ladder.len() > 1 {
                (1, true)
            } else {
                (0, false)
            }
        } else {
            (self.rung, false)
        };
        let shape = self.shape_at(rung).clone();
        let ssm = if matches!(shape, DraftShape::Incremental) {
            0
        } else {
            self.spec_decisions += 1;
            if self.ssm_flop.len() > 1 && self.spec_decisions % self.cfg.probe_period == 0 {
                // Round-robin probe slot: cycle the pool deterministically.
                let pick = (self.spec_decisions / self.cfg.probe_period) % self.ssm_flop.len();
                probe = probe || pick != self.best_ssm();
                pick
            } else {
                self.best_ssm()
            }
        };
        if probe {
            self.probes += 1;
        }
        if let Some(count) = self.rung_decisions.get_mut(rung) {
            *count += 1;
        }
        if !matches!(shape, DraftShape::Incremental) {
            if let Some(count) = self.ssm_routes.get_mut(ssm) {
                *count += 1;
            }
        }
        AdaptiveDecision {
            rung,
            shape,
            ssm,
            probe,
        }
    }

    /// Feeds back a completed step: `accepted` speculated tokens survived
    /// verification out of the decision's offered depth.
    pub fn observe(&mut self, decision: &AdaptiveDecision, accepted: usize) {
        let offered = decision.shape.offered_depth();
        if offered == 0 {
            // Incremental step: nothing to learn about speculation.
            return;
        }
        let a = self.cfg.ewma_alpha;
        let survival = accepted as f32 / offered as f32;
        self.accept_ewma = a * accepted as f32 + (1.0 - a) * self.accept_ewma;
        self.survival_ewma = a * survival + (1.0 - a) * self.survival_ewma;

        // SPIN-style routing signal: accepted tokens per draft FLOP,
        // normalized so the cheapest SSM's weight is 1.0-ish regardless
        // of absolute scale.
        let flop = self
            .ssm_flop
            .get(decision.ssm)
            .copied()
            .unwrap_or(1.0)
            .max(1.0);
        let min_flop = self
            .ssm_flop
            .iter()
            .fold(f32::INFINITY, |m, &f| m.min(f))
            .max(1.0);
        let score = accepted as f32 * (min_flop / flop);
        if let Some(slot) = self.ssm_score.get_mut(decision.ssm) {
            *slot = a * score + (1.0 - a) * *slot;
        }

        // Rung movement with hysteresis; probe steps still teach the
        // EWMAs (above) but only a probe that *succeeds* moves the rung —
        // a failed probe must not shove a parked controller further down.
        if survival >= self.cfg.up_threshold {
            self.up_streak += 1;
            self.down_streak = 0;
            let at_probe_success = decision.rung > self.rung;
            if at_probe_success || self.up_streak >= self.cfg.hysteresis {
                if self.rung + 1 < self.ladder.len() {
                    self.rung += 1;
                }
                self.up_streak = 0;
            }
        } else if survival <= self.cfg.down_threshold {
            self.up_streak = 0;
            if decision.rung > self.rung {
                // Failed probe from the parked rung: stay parked.
                return;
            }
            self.down_streak += 1;
            if self.down_streak >= self.cfg.hysteresis {
                self.rung = self.rung.saturating_sub(1);
                self.down_streak = 0;
            }
        } else {
            self.up_streak = 0;
            self.down_streak = 0;
        }
    }

    /// Index of the SSM with the best accepted-per-draft-FLOP EWMA
    /// (lowest index wins ties, deterministically).
    fn best_ssm(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.ssm_score.iter().enumerate() {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Current ladder rung (for tests and reporting).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Telemetry snapshot for `ServeReport`.
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            rung_decisions: self.rung_decisions.clone(),
            ssm_routes: self.ssm_routes.clone(),
            probes: self.probes,
            final_rung: self.rung,
            accept_ewma: self.accept_ewma,
            survival_ewma: self.survival_ewma,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(greedy: bool, n_ssms: usize) -> SpecController {
        SpecController::new(AdaptiveConfig::default(), greedy, vec![1.0e6; n_ssms])
    }

    #[test]
    fn climbs_to_top_on_sustained_acceptance() {
        let mut c = controller(true, 1);
        for _ in 0..32 {
            let d = c.decide();
            c.observe(&d, d.shape.offered_depth());
        }
        assert_eq!(c.rung(), 5, "full survival must reach paper_default");
        let d = c.decide();
        assert_eq!(d.shape, DraftShape::Tree(ExpansionConfig::paper_default()));
    }

    #[test]
    fn descends_to_incremental_on_sustained_rejection() {
        let mut c = controller(true, 1);
        for _ in 0..32 {
            let d = c.decide();
            c.observe(&d, 0);
        }
        assert_eq!(c.rung(), 0, "zero survival must park at incremental");
    }

    #[test]
    fn parked_controller_probes_and_recovers() {
        let mut c = controller(true, 1);
        // Park it.
        for _ in 0..16 {
            let d = c.decide();
            c.observe(&d, 0);
        }
        assert_eq!(c.rung(), 0);
        // Now acceptance turns perfect: probes must pull it back up.
        let mut probed = false;
        for _ in 0..64 {
            let d = c.decide();
            probed |= d.probe;
            c.observe(&d, d.shape.offered_depth());
        }
        assert!(probed, "parked controller must issue probes");
        assert!(c.rung() > 0, "successful probes must un-park the rung");
    }

    #[test]
    fn hysteresis_blocks_single_step_flips() {
        let mut c = controller(true, 1);
        let start = c.rung();
        let d = c.decide();
        c.observe(&d, d.shape.offered_depth());
        assert_eq!(c.rung(), start, "one good step must not climb");
        let d = c.decide();
        c.observe(&d, 0);
        let d = c.decide();
        c.observe(&d, d.shape.offered_depth());
        assert_eq!(c.rung(), start, "alternating steps must not move");
    }

    #[test]
    fn routes_to_highest_scoring_ssm() {
        let mut c = SpecController::new(AdaptiveConfig::default(), true, vec![1.0e6, 1.0e6, 1.0e6]);
        // Teach it that SSM 2 accepts best. Probe slots cycle the pool
        // every `probe_period` speculative decisions, so each of the 3
        // SSMs is sampled every 36 steps — give the EWMA two full probe
        // cycles of SSM 2 to overtake the incumbent.
        for _ in 0..150 {
            let d = c.decide();
            let accepted = if d.ssm == 2 { 2 } else { 1 };
            c.observe(&d, accepted);
        }
        let d = c.decide();
        if !d.probe {
            assert_eq!(d.ssm, 2, "non-probe decisions must route to the best SSM");
        }
        let snap = c.snapshot();
        assert!(snap.probes > 0, "multi-SSM pools must be probed");
        assert!(
            snap.ssm_routes[2] > snap.ssm_routes[0],
            "best SSM must win most slots: {:?}",
            snap.ssm_routes
        );
    }

    #[test]
    fn flop_normalization_prefers_cheap_equally_good_ssm() {
        // SSM 0 is 4x cheaper and accepts identically — it must win.
        let mut c = SpecController::new(AdaptiveConfig::default(), true, vec![1.0e6, 4.0e6]);
        for _ in 0..32 {
            let d = c.decide();
            c.observe(&d, 1);
        }
        let d = c.decide();
        if !d.probe {
            assert_eq!(d.ssm, 0, "equal acceptance must route to the cheaper SSM");
        }
    }

    #[test]
    fn stochastic_ladder_has_no_dynamic_rungs() {
        let c = controller(false, 1);
        for shape in &c.ladder {
            assert!(
                !matches!(shape, DraftShape::Dynamic(_)),
                "MSS exactness requires sampled drafts; dynamic rung found"
            );
        }
    }

    #[test]
    fn worst_case_rows_covers_every_rung() {
        for greedy in [true, false] {
            let c = controller(greedy, 1);
            let worst = c.worst_case_rows();
            for shape in &c.ladder {
                assert!(shape.speculation_rows() <= worst);
            }
            assert_eq!(
                worst,
                ExpansionConfig::paper_default().node_count() + 1,
                "ladder tops out at paper_default"
            );
        }
    }

    #[test]
    fn snapshot_absorb_sums_histograms() {
        let mut a = ControllerSnapshot {
            rung_decisions: vec![1, 2],
            ssm_routes: vec![3],
            probes: 1,
            ..ControllerSnapshot::default()
        };
        let b = ControllerSnapshot {
            rung_decisions: vec![0, 1, 5],
            ssm_routes: vec![2, 2],
            probes: 2,
            ..ControllerSnapshot::default()
        };
        a.absorb(&b);
        assert_eq!(a.rung_decisions, vec![1, 3, 5]);
        assert_eq!(a.ssm_routes, vec![5, 2]);
        assert_eq!(a.probes, 3);
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut c = controller(true, 3);
            let mut trace = Vec::new();
            for i in 0..40usize {
                let d = c.decide();
                trace.push((d.rung, d.ssm, d.probe));
                c.observe(&d, i % 3);
            }
            (trace, c.snapshot())
        };
        assert_eq!(run(), run(), "controller must be a pure function of inputs");
    }
}
