//! Cross-request batched tree verification (§5's iteration-level
//! scheduling): all sessions of a continuous-batching iteration are
//! verified by the LLM in **one** stacked tree-parallel forward.
//!
//! Each iteration splits into three phases. Speculation
//! ([`crate::Session::propose`]) stays strictly per-session — the SSM
//! pool, RNG streams and degradation ladder are untouched. The LLM
//! forwards then fuse: the linearized trees (or single incremental rows)
//! of every participating session stack into one `[Σnᵢ, d]` batch with a
//! block-diagonal visibility mask and per-request KV-cache handles, so
//! the model crate's blocked kernels see one tall matrix instead of N
//! tiny ones. Finally verification/commit runs per-session again, in
//! item order.
//!
//! Faulted requests (SSM stall, simulated KV OOM) drop out of the fused
//! pass and take the serial incremental path — a fault degrades one
//! request without poisoning its batch-mates. Because every row of the
//! stacked forward is computed with bitwise-identical reduction order to
//! a solo forward (see `specinfer-model`), batched stepping emits
//! exactly the tokens serial stepping does, seed for seed.

use specinfer_model::{BatchRequest, Transformer, Visibility};
use specinfer_tensor::Tensor;
use specinfer_tokentree::TokenId;

use crate::engine::{EngineConfig, Proposal, Session, StepFault, StepStats};

/// One session's slot in a batched iteration.
#[derive(Debug)]
pub struct BatchItem<'a> {
    /// The session to advance.
    pub session: &'a mut Session,
    /// Its engine configuration (per-request, Orca-style).
    pub config: &'a EngineConfig,
    /// The fault injected into this session's iteration.
    pub fault: StepFault,
}

impl<'a> BatchItem<'a> {
    /// A fault-free slot.
    pub fn new(session: &'a mut Session, config: &'a EngineConfig) -> Self {
        BatchItem {
            session,
            config,
            fault: StepFault::default(),
        }
    }
}

/// Stacked rows of one proposal, staged for the fused forward.
struct Prep {
    /// Index into `items` of the session these rows belong to.
    idx: usize,
    tokens: Vec<TokenId>,
    positions: Vec<usize>,
}

/// Drives N sessions through one LLM verification pass per iteration.
#[derive(Debug, Default)]
pub struct BatchedVerifier;

impl BatchedVerifier {
    /// Creates a verifier (stateless; exists for API symmetry).
    pub fn new() -> Self {
        BatchedVerifier
    }

    /// Advances every item by one decoding iteration, fusing all
    /// non-faulted LLM forwards into a single stacked pass.
    ///
    /// Returns one `Option<StepStats>` per item, in order — `None` for
    /// sessions that were already finished (exactly what
    /// [`crate::Session::step_faulted`] returns). Stall/OOM-faulted
    /// items fall out of the batch and are served serially on the
    /// incremental path.
    pub fn step_batch(
        &self,
        llm: &Transformer,
        ssms: &[&Transformer],
        items: &mut [BatchItem<'_>],
    ) -> Vec<Option<StepStats>> {
        // Phase 1: propose per-session, in item order. Each session owns
        // its RNG stream, so per-item sequencing matches serial stepping.
        let mut proposals: Vec<Option<Proposal>> = items
            .iter_mut()
            .map(|it| it.session.propose(llm, ssms, it.config, it.fault))
            .collect();

        // Stage the stacked rows of every batch participant. Faulted
        // (forced-incremental) proposals are excluded: they run serially
        // below so a fault cannot perturb the fused pass.
        let mut preps: Vec<Prep> = Vec::with_capacity(items.len());
        for (idx, (proposal, item)) in proposals.iter().zip(items.iter()).enumerate() {
            let Some(p) = proposal else { continue };
            if p.forced_incremental() {
                continue;
            }
            let base = item.session.llm_cache_len();
            let (tokens, positions) = match p.tree() {
                Some(lin) => (
                    lin.tokens().to_vec(),
                    lin.depths().iter().map(|d| base + d).collect(),
                ),
                None => (vec![item.session.last_token()], vec![base]),
            };
            preps.push(Prep {
                idx,
                tokens,
                positions,
            });
        }

        // Phase 2: one fused forward over all participants. The borrow
        // walk pairs each prep with its item's cache handle in order.
        let mut batched_logits: Vec<Tensor> = Vec::new();
        if !preps.is_empty() {
            let mut reqs: Vec<BatchRequest<'_>> = Vec::with_capacity(preps.len());
            let mut preps_it = preps.iter().peekable();
            for (idx, (item, proposal)) in items.iter_mut().zip(proposals.iter()).enumerate() {
                if preps_it.peek().is_none_or(|p| p.idx != idx) {
                    continue;
                }
                let prep = match preps_it.next() {
                    Some(p) => p,
                    None => unreachable!("peek above guarantees a prep"),
                };
                let visible = match proposal.as_ref().and_then(|p| p.tree()) {
                    Some(lin) => Visibility::Tree(lin.mask()),
                    None => Visibility::Causal,
                };
                reqs.push(BatchRequest {
                    tokens: &prep.tokens,
                    positions: &prep.positions,
                    cache: item.session.llm_cache_mut(),
                    visible,
                });
            }
            batched_logits = llm.forward_rows_batch(&mut reqs);
        }

        // Phase 3: commit per-session, in item order. Batched items
        // consume their logits slice; faulted items run the serial
        // incremental forward here, after the fused pass.
        let mut stats: Vec<Option<StepStats>> = Vec::with_capacity(items.len());
        let mut batched_iter = batched_logits.into_iter();
        for (item, proposal) in items.iter_mut().zip(proposals.iter_mut()) {
            let Some(proposal) = proposal.take() else {
                stats.push(None);
                continue;
            };
            let logits = if proposal.forced_incremental() {
                item.session.forward_proposal(llm, &proposal)
            } else {
                match batched_iter.next() {
                    Some(l) => l,
                    None => unreachable!("every batch participant has a logits tensor"),
                }
            };
            stats.push(Some(item.session.commit(
                ssms,
                item.config,
                proposal,
                &logits,
            )));
        }
        stats
    }
}
