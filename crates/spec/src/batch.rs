//! Cross-request batched tree verification (§5's iteration-level
//! scheduling): all sessions of a continuous-batching iteration are
//! verified by the LLM in **one** stacked tree-parallel forward — or, in
//! the default *hierarchical* mode, in at most two.
//!
//! Each iteration splits into three phases. Speculation
//! ([`crate::Session::propose`]) is *logically* per-session — the SSM
//! pool, RNG streams and degradation ladder are untouched — but runs as
//! one data-parallel pass across the batch: sessions are sharded over
//! the tensor crate's effective thread count and speculate concurrently,
//! which is bitwise-safe because each session owns its caches and RNG
//! stream and every kernel is bitwise-identical at any thread count.
//! The LLM forwards then fuse: the linearized trees (or single
//! incremental rows) of every participating session stack into one
//! `[Σnᵢ, d]` batch with a block-diagonal visibility mask and
//! per-request KV-cache handles, so the model crate's blocked kernels
//! see one tall matrix instead of N tiny ones. Finally
//! verification/commit runs per-session again, in item order.
//!
//! # Hierarchical verification
//!
//! A wide tree pays for every node it forwards, but most of a tree dies
//! at depth 1: if the LLM rejects the root's continuation, every deeper
//! node was wasted work. The hierarchical mode therefore splits the
//! fused forward in two (after "Hierarchical Verification of Speculative
//! Beams"; see ARCHITECTURE.md §14):
//!
//! 1. **Pass A** forwards only each tree's *depth-1 frontier* (root +
//!    depth-1 children) for the whole batch, then runs each session's
//!    verification walk as far as those rows allow. A walk that dies at
//!    the frontier is complete — its deep subtrees are **pruned** without
//!    ever being forwarded.
//! 2. **Pass B** forwards, for each still-paused walk, exactly the one
//!    surviving subtree (a contiguous DFS range), again block-diagonally
//!    across the batch, and resumes the walk to completion.
//!
//! Bitwise equality with the single-pass verifier holds under both
//! greedy and MSS: the verification walks are resumable at node
//! boundaries with no mid-node RNG state ([`crate::VerifyWalk`]), and
//! every forwarded row sees exactly the visible-ancestor set it would
//! see in single-pass layout, in the same relative order — masked
//! columns contribute an exact `0.0` to the attention reduction, so
//! dropping them from the layout leaves every output bit unchanged.
//! Between the passes the session's KV tail is compacted to
//! `[root, survivor]`, which is a prefix of what commit would retain
//! anyway.
//!
//! The caller decides *which* sessions participate each iteration — the
//! batch is **ragged**: `step_batch` takes whatever set is currently
//! live, so requests join and retire mid-flight and the block-diagonal
//! mask is re-packed from scratch every call. Nothing here assumes two
//! consecutive iterations saw the same items (see ARCHITECTURE.md §12
//! for the join/retire lifecycle driven by the serving daemon).
//!
//! Faulted requests (SSM stall, simulated KV OOM) drop out of the fused
//! pass and take the serial incremental path — a fault degrades one
//! request without poisoning its batch-mates. Because every row of the
//! stacked forward is computed with bitwise-identical reduction order to
//! a solo forward (see `specinfer-model`), batched stepping emits
//! exactly the tokens serial stepping does, seed for seed.

use specinfer_model::{BatchRequest, DecodeMode, Transformer, Visibility};
use specinfer_tensor::Tensor;
use specinfer_tokentree::{TokenId, TopologyMask};

use crate::engine::{EngineConfig, Proposal, Session, StepFault, StepStats};
use crate::verifier::{
    advance_greedy, advance_naive, advance_stochastic, LogitRows, StochasticVerifier, VerifyWalk,
};

/// One session's slot in a batched iteration.
#[derive(Debug)]
pub struct BatchItem<'a> {
    /// The session to advance.
    pub session: &'a mut Session,
    /// Its engine configuration (per-request, Orca-style).
    pub config: &'a EngineConfig,
    /// The fault injected into this session's iteration.
    pub fault: StepFault,
}

impl<'a> BatchItem<'a> {
    /// A fault-free slot.
    pub fn new(session: &'a mut Session, config: &'a EngineConfig) -> Self {
        BatchItem {
            session,
            config,
            fault: StepFault::default(),
        }
    }
}

/// Verify-row accounting of one batched iteration — the hierarchical
/// mode's reason to exist, made measurable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchRowStats {
    /// Rows a single-pass fused forward would have computed for the same
    /// participants (every tree node, plus one per incremental row).
    pub single_pass_rows: usize,
    /// Rows actually forwarded in pass A (depth-1 frontiers plus
    /// incremental rows).
    pub pass_a_rows: usize,
    /// Rows actually forwarded in pass B (surviving subtrees only).
    pub pass_b_rows: usize,
}

impl BatchRowStats {
    /// Total rows the hierarchical schedule forwarded.
    pub fn forwarded_rows(&self) -> usize {
        self.pass_a_rows + self.pass_b_rows
    }

    /// Rows pruned relative to single-pass verification. Never negative:
    /// pass A (frontier) and pass B (one subtree) are disjoint subsets of
    /// the linearization.
    pub fn pruned_rows(&self) -> usize {
        self.single_pass_rows.saturating_sub(self.forwarded_rows())
    }

    /// Accumulates another iteration's counts.
    pub fn absorb(&mut self, other: &BatchRowStats) {
        self.single_pass_rows += other.single_pass_rows;
        self.pass_a_rows += other.pass_a_rows;
        self.pass_b_rows += other.pass_b_rows;
    }
}

/// Stacked rows of one proposal, staged for a fused forward.
struct Prep {
    /// Index into `items` of the session these rows belong to.
    idx: usize,
    tokens: Vec<TokenId>,
    positions: Vec<usize>,
    /// Block-diagonal visibility for these rows; `None` means causal.
    mask: Option<TopologyMask>,
}

/// [`LogitRows`] over a pass-A tensor: row `k` of the tensor holds the
/// logits of linearized index `lin_indices[k]` (sorted ascending — DFS
/// order lists the root, then depth-1 nodes in increasing index order).
struct SparseRows<'a> {
    tensor: &'a Tensor,
    lin_indices: &'a [usize],
}

impl LogitRows for SparseRows<'_> {
    fn row(&self, idx: usize) -> Option<&[f32]> {
        self.lin_indices
            .binary_search(&idx)
            .ok()
            .map(|k| self.tensor.row(k))
    }
}

/// [`LogitRows`] over a pass-B tensor: row `k` holds linearized index
/// `start + k` (the surviving subtree's contiguous DFS range).
struct RangeRows<'a> {
    tensor: &'a Tensor,
    start: usize,
}

impl LogitRows for RangeRows<'_> {
    fn row(&self, idx: usize) -> Option<&[f32]> {
        idx.checked_sub(self.start)
            .filter(|&k| k < self.tensor.rows())
            .map(|k| self.tensor.row(k))
    }
}

/// Per-participant verification state threaded between the two passes.
enum Slot {
    /// Non-tree participant: its single pass-A row's logits, kept for
    /// commit.
    Incremental(Tensor),
    /// Tree participant.
    Tree {
        /// Cache length before pass A appended any rows.
        base: usize,
        /// Pass-A logits (one row per frontier node).
        logits_a: Tensor,
        /// Sorted linearized indices of the frontier (root + depth-1).
        pa_lin: Vec<usize>,
        /// The (possibly paused) verification walk.
        walk: VerifyWalk,
        /// Pass-B state when the walk survived past the frontier.
        pass_b: Option<PassB>,
    },
}

/// One surviving subtree staged for (or returned from) pass B.
struct PassB {
    /// Linear index of the subtree root (the paused walk's current node).
    s0: usize,
    tokens: Vec<TokenId>,
    positions: Vec<usize>,
    mask: TopologyMask,
    logits_b: Option<Tensor>,
}

/// Drives N sessions through at most two LLM verification passes per
/// iteration.
#[derive(Debug)]
pub struct BatchedVerifier {
    hierarchical: bool,
}

impl Default for BatchedVerifier {
    fn default() -> Self {
        BatchedVerifier::new()
    }
}

impl BatchedVerifier {
    /// The default verifier: hierarchical two-pass verification.
    pub fn new() -> Self {
        BatchedVerifier { hierarchical: true }
    }

    /// The legacy schedule: every tree node forwarded in one pass. Kept
    /// for equivalence testing and row-count comparison benchmarks.
    pub fn single_pass() -> Self {
        BatchedVerifier {
            hierarchical: false,
        }
    }

    /// Advances every item by one decoding iteration, fusing all
    /// non-faulted LLM forwards into stacked passes.
    ///
    /// Returns one `Option<StepStats>` per item, in order — `None` for
    /// sessions that were already finished (exactly what
    /// [`crate::Session::step_faulted`] returns). Stall/OOM-faulted
    /// items fall out of the batch and are served serially on the
    /// incremental path.
    pub fn step_batch(
        &self,
        llm: &Transformer,
        ssms: &[&Transformer],
        items: &mut [BatchItem<'_>],
    ) -> Vec<Option<StepStats>> {
        self.step_batch_counted(llm, ssms, items).0
    }

    /// [`BatchedVerifier::step_batch`] plus the iteration's verify-row
    /// accounting.
    pub fn step_batch_counted(
        &self,
        llm: &Transformer,
        ssms: &[&Transformer],
        items: &mut [BatchItem<'_>],
    ) -> (Vec<Option<StepStats>>, BatchRowStats) {
        let proposals = propose_all(llm, ssms, items);
        if self.hierarchical {
            step_hierarchical(llm, ssms, items, proposals)
        } else {
            step_single_pass(llm, ssms, items, proposals)
        }
    }
}

/// Phase 1: fused speculation — propose for all sessions in one
/// data-parallel pass. Each session owns its caches and RNG stream and
/// the kernels are bitwise-identical at any thread count, so sharding
/// sessions over threads emits exactly the proposals serial per-item
/// sequencing would.
fn propose_all(
    llm: &Transformer,
    ssms: &[&Transformer],
    items: &mut [BatchItem<'_>],
) -> Vec<Option<Proposal>> {
    let n = items.len();
    let mut proposals: Vec<Option<Proposal>> = Vec::with_capacity(n);
    proposals.resize_with(n, || None);
    let threads = specinfer_tensor::effective_threads().min(n).max(1);
    if threads > 1 {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (items_chunk, slots) in items.chunks_mut(chunk).zip(proposals.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (it, slot) in items_chunk.iter_mut().zip(slots.iter_mut()) {
                        *slot = it.session.propose(llm, ssms, it.config, it.fault);
                    }
                });
            }
        });
    } else {
        for (it, slot) in items.iter_mut().zip(proposals.iter_mut()) {
            *slot = it.session.propose(llm, ssms, it.config, it.fault);
        }
    }
    proposals
}

/// Runs one fused forward over `preps`, pairing each prep with its
/// item's cache handle in item order.
fn forward_fused(llm: &Transformer, items: &mut [BatchItem<'_>], preps: &[Prep]) -> Vec<Tensor> {
    if preps.is_empty() {
        return Vec::new();
    }
    let mut reqs: Vec<BatchRequest<'_>> = Vec::with_capacity(preps.len());
    let mut preps_it = preps.iter().peekable();
    for (idx, item) in items.iter_mut().enumerate() {
        if preps_it.peek().is_none_or(|p| p.idx != idx) {
            continue;
        }
        let prep = match preps_it.next() {
            Some(p) => p,
            None => unreachable!("peek above guarantees a prep"),
        };
        let visible = match &prep.mask {
            Some(mask) => Visibility::Tree(mask),
            None => Visibility::Causal,
        };
        reqs.push(BatchRequest {
            tokens: &prep.tokens,
            positions: &prep.positions,
            cache: item.session.llm_cache_mut(),
            visible,
        });
    }
    llm.forward_rows_batch(&mut reqs)
}

/// Advances a verification walk under `config` as far as `rows` allows,
/// drawing any stochastic decisions from the session's own RNG stream.
fn advance_walk(
    walk: &mut VerifyWalk,
    session: &mut Session,
    config: &EngineConfig,
    proposal: &Proposal,
    rows: &dyn LogitRows,
) {
    let (spec, lin) = match proposal.speculation() {
        Some(parts) => parts,
        None => unreachable!("walks only run for tree proposals"),
    };
    match &config.decode {
        DecodeMode::Greedy => advance_greedy(walk, &spec.tree, lin, rows),
        mode => match config.verifier {
            StochasticVerifier::MultiStep => advance_stochastic(
                walk,
                &spec.tree,
                lin,
                rows,
                &spec.dists,
                mode,
                session.rng_mut(),
            ),
            StochasticVerifier::Naive => {
                advance_naive(walk, &spec.tree, lin, rows, mode, session.rng_mut())
            }
        },
    }
}

/// The legacy single-pass schedule: every tree node of every participant
/// forwarded in one stacked pass, verification inside commit.
fn step_single_pass(
    llm: &Transformer,
    ssms: &[&Transformer],
    items: &mut [BatchItem<'_>],
    mut proposals: Vec<Option<Proposal>>,
) -> (Vec<Option<StepStats>>, BatchRowStats) {
    let mut row_stats = BatchRowStats::default();
    // Stage the stacked rows of every batch participant. Faulted
    // (forced-incremental) proposals are excluded: they run serially
    // below so a fault cannot perturb the fused pass.
    let mut preps: Vec<Prep> = Vec::with_capacity(items.len());
    for (idx, (proposal, item)) in proposals.iter().zip(items.iter()).enumerate() {
        let Some(p) = proposal else { continue };
        if p.forced_incremental() {
            continue;
        }
        let base = item.session.llm_cache_len();
        let (tokens, positions, mask) = match p.tree() {
            Some(lin) => (
                lin.tokens().to_vec(),
                lin.depths().iter().map(|d| base + d).collect(),
                Some(lin.mask().clone()),
            ),
            None => (vec![item.session.last_token()], vec![base], None),
        };
        row_stats.single_pass_rows += tokens.len();
        row_stats.pass_a_rows += tokens.len();
        preps.push(Prep {
            idx,
            tokens,
            positions,
            mask,
        });
    }

    // Phase 2: one fused forward over all participants.
    let batched_logits = forward_fused(llm, items, &preps);

    // Phase 3: commit per-session, in item order. Batched items
    // consume their logits slice; faulted items run the serial
    // incremental forward here, after the fused pass.
    let mut stats: Vec<Option<StepStats>> = Vec::with_capacity(items.len());
    let mut batched_iter = batched_logits.into_iter();
    for (item, proposal) in items.iter_mut().zip(proposals.iter_mut()) {
        let Some(proposal) = proposal.take() else {
            stats.push(None);
            continue;
        };
        let logits = if proposal.forced_incremental() {
            item.session.forward_proposal(llm, &proposal)
        } else {
            match batched_iter.next() {
                Some(l) => l,
                None => unreachable!("every batch participant has a logits tensor"),
            }
        };
        stats.push(Some(item.session.commit(
            ssms,
            item.config,
            proposal,
            &logits,
        )));
    }
    (stats, row_stats)
}

/// The hierarchical two-pass schedule. See the module docs for the row
/// accounting and the bitwise-equality argument.
fn step_hierarchical(
    llm: &Transformer,
    ssms: &[&Transformer],
    items: &mut [BatchItem<'_>],
    mut proposals: Vec<Option<Proposal>>,
) -> (Vec<Option<StepStats>>, BatchRowStats) {
    let mut row_stats = BatchRowStats::default();
    let n = items.len();

    // Stage pass A: each tree's depth-1 frontier (root + depth-1
    // children — a sorted prefix-closed subset of the DFS order), or the
    // one causal row of a non-tree participant.
    let mut preps_a: Vec<Prep> = Vec::with_capacity(n);
    let mut frontier_of: Vec<Option<(usize, Vec<usize>)>> = Vec::with_capacity(n);
    frontier_of.resize_with(n, || None);
    for (idx, (proposal, item)) in proposals.iter().zip(items.iter()).enumerate() {
        let Some(p) = proposal else { continue };
        if p.forced_incremental() {
            continue;
        }
        let base = item.session.llm_cache_len();
        match p.tree() {
            Some(lin) => {
                let full = lin.mask();
                let pa_lin: Vec<usize> = lin
                    .depths()
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d <= 1)
                    .map(|(i, _)| i)
                    .collect();
                let tokens: Vec<TokenId> = pa_lin
                    .iter()
                    .map(|&i| lin.tokens().get(i).copied().unwrap_or_default())
                    .collect();
                let positions: Vec<usize> = pa_lin
                    .iter()
                    .map(|&i| base + lin.depths().get(i).copied().unwrap_or_default())
                    .collect();
                let mask = TopologyMask::from_fn(pa_lin.len(), |i, j| {
                    match (pa_lin.get(i), pa_lin.get(j)) {
                        (Some(&a), Some(&b)) => full.allowed(a, b),
                        _ => false,
                    }
                });
                row_stats.single_pass_rows += lin.len();
                row_stats.pass_a_rows += pa_lin.len();
                preps_a.push(Prep {
                    idx,
                    tokens,
                    positions,
                    mask: Some(mask),
                });
                if let Some(slot) = frontier_of.get_mut(idx) {
                    *slot = Some((base, pa_lin));
                }
            }
            None => {
                row_stats.single_pass_rows += 1;
                row_stats.pass_a_rows += 1;
                preps_a.push(Prep {
                    idx,
                    tokens: vec![item.session.last_token()],
                    positions: vec![base],
                    mask: None,
                });
            }
        }
    }

    // Pass A: one fused forward over every participant's frontier.
    let logits_a = forward_fused(llm, items, &preps_a);

    // Distribute pass-A logits into per-participant slots.
    let mut slots: Vec<Option<Slot>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut logits_iter = logits_a.into_iter();
    for prep in &preps_a {
        let logits = match logits_iter.next() {
            Some(l) => l,
            None => unreachable!("every pass-A participant has a logits tensor"),
        };
        let slot = match frontier_of.get_mut(prep.idx).and_then(|f| f.take()) {
            Some((base, pa_lin)) => Slot::Tree {
                base,
                logits_a: logits,
                pa_lin,
                walk: VerifyWalk::new(),
                pass_b: None,
            },
            None => Slot::Incremental(logits),
        };
        if let Some(s) = slots.get_mut(prep.idx) {
            *s = Some(slot);
        }
    }

    // Run every tree walk as far as the frontier rows allow. A walk that
    // finishes here killed its deep subtrees: they are pruned, never
    // forwarded. A paused walk names exactly one surviving depth-2 node;
    // its subtree (a contiguous DFS range) is staged for pass B, and the
    // session's cache tail is compacted to [root, survivor] — a prefix
    // of what commit retains anyway, making every remaining cache row an
    // ancestor of every pass-B row.
    for ((item, proposal), slot) in items.iter_mut().zip(proposals.iter()).zip(slots.iter_mut()) {
        let (
            Some(proposal),
            Some(Slot::Tree {
                base,
                logits_a,
                pa_lin,
                walk,
                pass_b,
            }),
        ) = (proposal.as_ref(), slot.as_mut())
        else {
            continue;
        };
        let rows = SparseRows {
            tensor: &*logits_a,
            lin_indices: pa_lin,
        };
        advance_walk(walk, item.session, item.config, proposal, &rows);
        if walk.is_done() {
            continue;
        }
        let lin = match proposal.tree() {
            Some(lin) => lin,
            None => unreachable!("tree slots hold tree proposals"),
        };
        // The walk paused at a depth-2 node: its depth-1 parent is the
        // chosen branch.
        let s0 = lin.index_of(walk.current());
        let end = lin.subtree_end(s0);
        let parent = match lin.parents().get(s0).copied().flatten() {
            Some(p) => p,
            None => unreachable!("paused walks sit at depth >= 2"),
        };
        let parent_pos = match pa_lin.binary_search(&parent) {
            Ok(k) => k,
            Err(_) => unreachable!("the pause node's parent is on the frontier"),
        };
        // Compact the appended tail to [root, chosen depth-1 child].
        item.session
            .llm_cache_mut()
            .retain_rows(*base, &[0, parent_pos]);
        let full = lin.mask();
        let mask = TopologyMask::from_fn(end - s0, |i, j| full.allowed(s0 + i, s0 + j));
        let tokens: Vec<TokenId> = lin.tokens().get(s0..end).unwrap_or(&[]).to_vec();
        let positions: Vec<usize> = lin
            .depths()
            .get(s0..end)
            .unwrap_or(&[])
            .iter()
            .map(|d| *base + d)
            .collect();
        row_stats.pass_b_rows += end - s0;
        *pass_b = Some(PassB {
            s0,
            tokens,
            positions,
            mask,
            logits_b: None,
        });
    }

    // Pass B: one fused forward over the surviving subtrees.
    let mut preps_b: Vec<Prep> = Vec::new();
    for (idx, slot) in slots.iter().enumerate() {
        let Some(Slot::Tree {
            pass_b: Some(pb), ..
        }) = slot
        else {
            continue;
        };
        preps_b.push(Prep {
            idx,
            tokens: pb.tokens.clone(),
            positions: pb.positions.clone(),
            mask: Some(pb.mask.clone()),
        });
    }
    let logits_b = forward_fused(llm, items, &preps_b);
    let mut logits_iter = logits_b.into_iter();
    for prep in &preps_b {
        let logits = match logits_iter.next() {
            Some(l) => l,
            None => unreachable!("every pass-B participant has a logits tensor"),
        };
        if let Some(Some(Slot::Tree {
            pass_b: Some(pb), ..
        })) = slots.get_mut(prep.idx)
        {
            pb.logits_b = Some(logits);
        }
    }

    // Resume the paused walks: every node reachable from the pause point
    // lies inside the forwarded subtree, so each walk must finish.
    for ((item, proposal), slot) in items.iter_mut().zip(proposals.iter()).zip(slots.iter_mut()) {
        let (
            Some(proposal),
            Some(Slot::Tree {
                walk,
                pass_b: Some(pb),
                ..
            }),
        ) = (proposal.as_ref(), slot.as_mut())
        else {
            continue;
        };
        let logits = match &pb.logits_b {
            Some(l) => l,
            None => unreachable!("pass B forwarded every staged subtree"),
        };
        let rows = RangeRows {
            tensor: logits,
            start: pb.s0,
        };
        advance_walk(walk, item.session, item.config, proposal, &rows);
        assert!(
            walk.is_done(),
            "a resumed walk cannot escape its forwarded subtree"
        );
    }

    // Phase 3: commit per-session, in item order. Tree participants
    // commit their finished walk with keep-positions describing the
    // two-pass cache layout; faulted items run the serial incremental
    // forward here, after the fused passes.
    let mut stats: Vec<Option<StepStats>> = Vec::with_capacity(n);
    for ((item, proposal), slot) in items
        .iter_mut()
        .zip(proposals.iter_mut())
        .zip(slots.into_iter())
    {
        let Some(proposal) = proposal.take() else {
            stats.push(None);
            continue;
        };
        match slot {
            None => {
                // Forced-incremental (faulted): serial path.
                let logits = item.session.forward_proposal(llm, &proposal);
                stats.push(Some(item.session.commit(
                    ssms,
                    item.config,
                    proposal,
                    &logits,
                )));
            }
            Some(Slot::Incremental(logits)) => {
                stats.push(Some(item.session.commit(
                    ssms,
                    item.config,
                    proposal,
                    &logits,
                )));
            }
            Some(Slot::Tree {
                base,
                pa_lin,
                walk,
                pass_b,
                ..
            }) => {
                let lin = match proposal.tree() {
                    Some(lin) => lin,
                    None => unreachable!("tree slots hold tree proposals"),
                };
                let outcome = {
                    assert!(walk.is_done(), "all walks finished above");
                    walk.into_outcome()
                };
                // Positions of root + accepted nodes relative to `base`,
                // in the cache's current tail layout.
                let keep = match &pass_b {
                    None => {
                        // Tail layout: the pass-A frontier. At most one
                        // frontier node (the chosen depth-1 child) was
                        // accepted.
                        let mut keep = vec![0usize];
                        for u in &outcome.nodes {
                            match pa_lin.binary_search(&lin.index_of(*u)) {
                                Ok(k) => keep.push(k),
                                Err(_) => {
                                    unreachable!("unpaused walks accept frontier nodes only")
                                }
                            }
                        }
                        keep
                    }
                    Some(pb) => {
                        // Tail layout after compaction + pass B:
                        // [root, chosen child, subtree rows...].
                        let mut keep = vec![0usize, 1usize];
                        for u in outcome.nodes.iter().skip(1) {
                            keep.push(2 + lin.index_of(*u) - pb.s0);
                        }
                        keep
                    }
                };
                stats.push(Some(item.session.commit_verified(
                    ssms,
                    item.config,
                    proposal,
                    outcome,
                    base,
                    keep,
                )));
            }
        }
    }
    (stats, row_stats)
}
