//! Cross-request batched tree verification (§5's iteration-level
//! scheduling): all sessions of a continuous-batching iteration are
//! verified by the LLM in **one** stacked tree-parallel forward.
//!
//! Each iteration splits into three phases. Speculation
//! ([`crate::Session::propose`]) is *logically* per-session — the SSM
//! pool, RNG streams and degradation ladder are untouched — but runs as
//! one data-parallel pass across the batch: sessions are sharded over
//! the tensor crate's effective thread count and speculate concurrently,
//! which is bitwise-safe because each session owns its caches and RNG
//! stream and every kernel is bitwise-identical at any thread count.
//! The LLM forwards then fuse: the linearized trees (or single
//! incremental rows) of every participating session stack into one
//! `[Σnᵢ, d]` batch with a block-diagonal visibility mask and
//! per-request KV-cache handles, so the model crate's blocked kernels
//! see one tall matrix instead of N tiny ones. Finally
//! verification/commit runs per-session again, in item order.
//!
//! The caller decides *which* sessions participate each iteration — the
//! batch is **ragged**: `step_batch` takes whatever set is currently
//! live, so requests join and retire mid-flight and the block-diagonal
//! mask is re-packed from scratch every call. Nothing here assumes two
//! consecutive iterations saw the same items (see ARCHITECTURE.md §12
//! for the join/retire lifecycle driven by the serving daemon).
//!
//! Faulted requests (SSM stall, simulated KV OOM) drop out of the fused
//! pass and take the serial incremental path — a fault degrades one
//! request without poisoning its batch-mates. Because every row of the
//! stacked forward is computed with bitwise-identical reduction order to
//! a solo forward (see `specinfer-model`), batched stepping emits
//! exactly the tokens serial stepping does, seed for seed.

use specinfer_model::{BatchRequest, Transformer, Visibility};
use specinfer_tensor::Tensor;
use specinfer_tokentree::TokenId;

use crate::engine::{EngineConfig, Proposal, Session, StepFault, StepStats};

/// One session's slot in a batched iteration.
#[derive(Debug)]
pub struct BatchItem<'a> {
    /// The session to advance.
    pub session: &'a mut Session,
    /// Its engine configuration (per-request, Orca-style).
    pub config: &'a EngineConfig,
    /// The fault injected into this session's iteration.
    pub fault: StepFault,
}

impl<'a> BatchItem<'a> {
    /// A fault-free slot.
    pub fn new(session: &'a mut Session, config: &'a EngineConfig) -> Self {
        BatchItem {
            session,
            config,
            fault: StepFault::default(),
        }
    }
}

/// Stacked rows of one proposal, staged for the fused forward.
struct Prep {
    /// Index into `items` of the session these rows belong to.
    idx: usize,
    tokens: Vec<TokenId>,
    positions: Vec<usize>,
}

/// Drives N sessions through one LLM verification pass per iteration.
#[derive(Debug, Default)]
pub struct BatchedVerifier;

impl BatchedVerifier {
    /// Creates a verifier (stateless; exists for API symmetry).
    pub fn new() -> Self {
        BatchedVerifier
    }

    /// Advances every item by one decoding iteration, fusing all
    /// non-faulted LLM forwards into a single stacked pass.
    ///
    /// Returns one `Option<StepStats>` per item, in order — `None` for
    /// sessions that were already finished (exactly what
    /// [`crate::Session::step_faulted`] returns). Stall/OOM-faulted
    /// items fall out of the batch and are served serially on the
    /// incremental path.
    pub fn step_batch(
        &self,
        llm: &Transformer,
        ssms: &[&Transformer],
        items: &mut [BatchItem<'_>],
    ) -> Vec<Option<StepStats>> {
        // Phase 1: fused speculation — propose for all sessions in one
        // data-parallel pass. Each session owns its caches and RNG
        // stream and the kernels are bitwise-identical at any thread
        // count, so sharding sessions over threads emits exactly the
        // proposals serial per-item sequencing would.
        let n = items.len();
        let mut proposals: Vec<Option<Proposal>> = Vec::with_capacity(n);
        proposals.resize_with(n, || None);
        let threads = specinfer_tensor::effective_threads().min(n).max(1);
        if threads > 1 {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (items_chunk, slots) in items.chunks_mut(chunk).zip(proposals.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (it, slot) in items_chunk.iter_mut().zip(slots.iter_mut()) {
                            *slot = it.session.propose(llm, ssms, it.config, it.fault);
                        }
                    });
                }
            });
        } else {
            for (it, slot) in items.iter_mut().zip(proposals.iter_mut()) {
                *slot = it.session.propose(llm, ssms, it.config, it.fault);
            }
        }

        // Stage the stacked rows of every batch participant. Faulted
        // (forced-incremental) proposals are excluded: they run serially
        // below so a fault cannot perturb the fused pass.
        let mut preps: Vec<Prep> = Vec::with_capacity(items.len());
        for (idx, (proposal, item)) in proposals.iter().zip(items.iter()).enumerate() {
            let Some(p) = proposal else { continue };
            if p.forced_incremental() {
                continue;
            }
            let base = item.session.llm_cache_len();
            let (tokens, positions) = match p.tree() {
                Some(lin) => (
                    lin.tokens().to_vec(),
                    lin.depths().iter().map(|d| base + d).collect(),
                ),
                None => (vec![item.session.last_token()], vec![base]),
            };
            preps.push(Prep {
                idx,
                tokens,
                positions,
            });
        }

        // Phase 2: one fused forward over all participants. The borrow
        // walk pairs each prep with its item's cache handle in order.
        let mut batched_logits: Vec<Tensor> = Vec::new();
        if !preps.is_empty() {
            let mut reqs: Vec<BatchRequest<'_>> = Vec::with_capacity(preps.len());
            let mut preps_it = preps.iter().peekable();
            for (idx, (item, proposal)) in items.iter_mut().zip(proposals.iter()).enumerate() {
                if preps_it.peek().is_none_or(|p| p.idx != idx) {
                    continue;
                }
                let prep = match preps_it.next() {
                    Some(p) => p,
                    None => unreachable!("peek above guarantees a prep"),
                };
                let visible = match proposal.as_ref().and_then(|p| p.tree()) {
                    Some(lin) => Visibility::Tree(lin.mask()),
                    None => Visibility::Causal,
                };
                reqs.push(BatchRequest {
                    tokens: &prep.tokens,
                    positions: &prep.positions,
                    cache: item.session.llm_cache_mut(),
                    visible,
                });
            }
            batched_logits = llm.forward_rows_batch(&mut reqs);
        }

        // Phase 3: commit per-session, in item order. Batched items
        // consume their logits slice; faulted items run the serial
        // incremental forward here, after the fused pass.
        let mut stats: Vec<Option<StepStats>> = Vec::with_capacity(items.len());
        let mut batched_iter = batched_logits.into_iter();
        for (item, proposal) in items.iter_mut().zip(proposals.iter_mut()) {
            let Some(proposal) = proposal.take() else {
                stats.push(None);
                continue;
            };
            let logits = if proposal.forced_incremental() {
                item.session.forward_proposal(llm, &proposal)
            } else {
                match batched_iter.next() {
                    Some(l) => l,
                    None => unreachable!("every batch participant has a logits tensor"),
                }
            };
            stats.push(Some(item.session.commit(
                ssms,
                item.config,
                proposal,
                &logits,
            )));
        }
        stats
    }
}
