//! Tree-based speculative inference and verification — the core of the
//! SpecInfer reproduction.
//!
//! The pipeline per decoding iteration (Figure 2 of the paper):
//!
//! 1. **Speculate** ([`speculate_expansion`] / [`speculate_merged`] /
//!    [`speculate_dynamic`]): one or more small speculative models
//!    (SSMs) expand a token tree from the last verified token, using a
//!    static ⟨k₁…k_m⟩ expansion schedule; multiple SSMs' trees are
//!    merged (Definition 3.2).
//! 2. **Decode** (`specinfer-model`): the LLM scores the *whole* tree in
//!    one tree-parallel pass with the topology-aware causal mask.
//! 3. **Verify** ([`verify_greedy`] / [`verify_stochastic`] /
//!    [`verify_naive`]): greedy exact-match descent, or stochastic
//!    **multi-step speculative sampling** (MSS) which provably preserves
//!    the LLM's output distribution (Theorem 4.2) while rejecting less
//!    than naive sampling (Theorem 4.3).
//!
//! [`SpecEngine`] and [`Session`] wire the loop together; [`boost`]
//! implements the paper's unsupervised boost-tuning pipeline for
//! building diverse SSM pools.
//!
//! # Example
//!
//! ```
//! use specinfer_model::{DecodeMode, ModelConfig, Transformer};
//! use specinfer_spec::{EngineConfig, InferenceMode, SpecEngine, StochasticVerifier};
//! use specinfer_tokentree::ExpansionConfig;
//!
//! let llm = Transformer::from_seed(ModelConfig::smoke(), 1);
//! let ssm = Transformer::from_seed(ModelConfig::smoke(), 2);
//! let engine = SpecEngine::new(
//!     &llm,
//!     vec![&ssm],
//!     EngineConfig {
//!         decode: DecodeMode::Greedy,
//!         verifier: StochasticVerifier::MultiStep,
//!         mode: InferenceMode::TreeSpeculative {
//!             expansion: ExpansionConfig::new(vec![2, 2, 1]),
//!         },
//!         max_new_tokens: 8,
//!         eos_token: None,
//!     },
//! );
//! let result = engine.generate(&[1, 2, 3], 0);
//! assert!(result.generated().len() >= 8);
//! ```

pub mod audit;
mod batch;
pub mod boost;
pub mod controller;
pub mod dynamic;
mod engine;
mod speculator;
mod verifier;

pub use audit::{audit_greedy, AuditReport};
pub use batch::{BatchItem, BatchRowStats, BatchedVerifier};
pub use boost::{boost_tune_pool, BoostConfig, BoostResult};
pub use controller::{
    draft_flop_weight, AdaptiveConfig, AdaptiveDecision, ControllerSnapshot, DraftShape,
    SpecController,
};
pub use dynamic::{speculate_dynamic, DynamicExpansionConfig};
pub use engine::{
    DegradationPolicy, DegradationStats, EngineConfig, EngineError, GenerationResult,
    InferenceMode, Session, SpecEngine, StepFault, StepStats,
};
pub use speculator::{
    expand_into, speculate_expansion, speculate_garbage, speculate_merged, speculate_pool_parallel,
    ExpansionMode, Speculation, SsmDistTable, DRAFT_FLATTEN_TEMPERATURE,
};
pub use verifier::{
    advance_greedy, advance_naive, advance_stochastic, verify_greedy, verify_naive,
    verify_stochastic, LogitRows, StochasticVerifier, TensorRows, VerifyOutcome, VerifyWalk,
};
