//! The token tree verifier (§4.3): greedy verification, multi-step
//! speculative sampling (MSS), and the naive-sampling baseline.

use specinfer_model::{sampler, DecodeMode};
use specinfer_tensor::rng::SeededRng;
use specinfer_tensor::Tensor;
use specinfer_tokentree::{LinearizedTree, NodeId, TokenId, TokenTree};

use crate::speculator::SsmDistTable;

/// The result of verifying a speculated token tree against the LLM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// The verified tokens `𝒱` appended to the sequence this step. The
    /// last entry is always the LLM-generated "bonus" token (which never
    /// came from the tree), so at least one token is produced per step.
    pub tokens: Vec<TokenId>,
    /// The accepted tree nodes, root-excluded, in path order. These
    /// correspond to `tokens[..tokens.len()-1]`.
    pub nodes: Vec<NodeId>,
}

impl VerifyOutcome {
    /// Number of speculated tokens that passed verification (excludes the
    /// bonus token).
    pub fn accepted_speculated(&self) -> usize {
        self.nodes.len()
    }
}

/// The stochastic verification algorithm to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StochasticVerifier {
    /// Multi-step speculative sampling (Algorithm 2, `VerifyStochastic`).
    MultiStep,
    /// Naive sampling: draw from the LLM and check tree membership
    /// (§4.3; the Table 3 baseline).
    Naive,
}

/// Logits source for a verification walk, keyed by linearized position.
///
/// The single-pass verifier has every row up front (one tensor row per
/// tree node); the hierarchical verifier only has rows for the regions it
/// has forwarded so far and answers `None` for the rest, pausing the walk
/// at exactly that node until the next block-diagonal pass fills it in.
pub trait LogitRows {
    /// The logits row for linearized tree index `idx`, if computed.
    fn row(&self, idx: usize) -> Option<&[f32]>;
}

/// [`LogitRows`] over a dense tensor with one row per linearized position
/// — the single-pass layout.
pub struct TensorRows<'a>(pub &'a Tensor);

impl LogitRows for TensorRows<'_> {
    fn row(&self, idx: usize) -> Option<&[f32]> {
        if idx < self.0.rows() {
            Some(self.0.row(idx))
        } else {
            None
        }
    }
}

/// An in-progress verification walk, resumable at node boundaries.
///
/// All three verifiers are per-node loops that read only the current
/// node's logits row and (for the stochastic ones) draw RNG strictly
/// after that row is in hand. A walk therefore pauses cleanly when the
/// row it needs next is unavailable, with no mid-node state to carry:
/// resuming with the missing row produces the same token/node sequence
/// and consumes the RNG stream identically to an uninterrupted run —
/// which is what makes hierarchical verification bitwise-equal to
/// single-pass under both greedy and MSS.
#[derive(Debug, Clone)]
pub struct VerifyWalk {
    tokens: Vec<TokenId>,
    nodes: Vec<NodeId>,
    u: NodeId,
    done: bool,
}

impl Default for VerifyWalk {
    fn default() -> Self {
        Self::new()
    }
}

impl VerifyWalk {
    /// A fresh walk positioned at the tree root.
    pub fn new() -> Self {
        VerifyWalk {
            tokens: Vec::new(),
            nodes: Vec::new(),
            u: TokenTree::ROOT,
            done: false,
        }
    }

    /// The node whose logits row the walk needs next. Meaningful only
    /// while the walk is paused (`!is_done()`).
    pub fn current(&self) -> NodeId {
        self.u
    }

    /// Accepted tree nodes so far, root-excluded, in path order.
    pub fn accepted(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether the walk has emitted its bonus token and finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Consumes a finished walk into its [`VerifyOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if the walk is still paused awaiting logits rows.
    pub fn into_outcome(self) -> VerifyOutcome {
        assert!(self.done, "verification walk still awaiting logits rows");
        VerifyOutcome {
            tokens: self.tokens,
            nodes: self.nodes,
        }
    }
}

/// Advances a greedy walk until it finishes or pauses at a node whose
/// logits row `rows` cannot provide yet.
pub fn advance_greedy(
    walk: &mut VerifyWalk,
    tree: &TokenTree,
    lin: &LinearizedTree,
    rows: &dyn LogitRows,
) {
    while !walk.done {
        let row = match rows.row(lin.index_of(walk.u)) {
            Some(r) => r,
            None => return,
        };
        let o = sampler::greedy_token(row);
        match tree.child_with_token(walk.u, o) {
            Some(v) => {
                walk.tokens.push(o);
                walk.nodes.push(v);
                walk.u = v;
            }
            None => {
                walk.tokens.push(o);
                walk.done = true;
            }
        }
    }
}

/// Advances a multi-step speculative sampling walk until it finishes or
/// pauses. RNG is consumed only for nodes whose row is available, so a
/// paused-and-resumed walk draws the exact same stream as an
/// uninterrupted one.
///
/// # Panics
///
/// Panics if a tried child has no recorded SSM distribution (the
/// speculator always records one).
pub fn advance_stochastic(
    walk: &mut VerifyWalk,
    tree: &TokenTree,
    lin: &LinearizedTree,
    rows: &dyn LogitRows,
    dists: &SsmDistTable,
    mode: &DecodeMode,
    rng: &mut SeededRng,
) {
    while !walk.done {
        let row = match rows.row(lin.index_of(walk.u)) {
            Some(r) => r,
            None => return,
        };
        let mut p = sampler::probs_from_logits(row, mode);
        let mut candidates: Vec<NodeId> = tree.children(walk.u).to_vec();
        let mut descended = false;
        while !candidates.is_empty() {
            let pick = rng.below(candidates.len());
            let v = match candidates.get(pick) {
                Some(&v) => v,
                None => unreachable!("rng.below({}) returned {pick}", candidates.len()),
            };
            let x = tree.token(v) as usize;
            let q = match dists.get(walk.u, tree.ssm_id(v)) {
                Some(q) => q,
                // The speculator records a distribution for every node it
                // expands; a miss means the table and tree diverged.
                None => unreachable!("no SSM distribution recorded for an expanded node"),
            };
            // Tokens outside either distribution's support carry zero
            // probability: the candidate is simply rejected.
            let px = p.get(x).copied().unwrap_or(0.0);
            let qx = q.get(x).copied().unwrap_or(0.0);
            let ratio = if qx > 0.0 { px / qx } else { 0.0 };
            if f64::from(rng.uniform()) <= f64::from(ratio) {
                walk.tokens.push(x as TokenId);
                walk.nodes.push(v);
                walk.u = v;
                descended = true;
                break;
            }
            residual_update(&mut p, q);
            candidates.swap_remove(pick);
        }
        if descended {
            continue;
        }
        // All candidates rejected (or u is a leaf): sample the bonus token
        // from the current (possibly residual) distribution.
        let bonus = sampler::sample_token(&p, rng);
        walk.tokens.push(bonus);
        walk.done = true;
    }
}

/// Advances a naive-sampling walk until it finishes or pauses.
pub fn advance_naive(
    walk: &mut VerifyWalk,
    tree: &TokenTree,
    lin: &LinearizedTree,
    rows: &dyn LogitRows,
    mode: &DecodeMode,
    rng: &mut SeededRng,
) {
    while !walk.done {
        let row = match rows.row(lin.index_of(walk.u)) {
            Some(r) => r,
            None => return,
        };
        let p = sampler::probs_from_logits(row, mode);
        let x = sampler::sample_token(&p, rng);
        walk.tokens.push(x);
        match tree.child_with_token(walk.u, x) {
            Some(v) => {
                walk.nodes.push(v);
                walk.u = v;
            }
            None => walk.done = true,
        }
    }
}

/// Greedy verification (`VerifyGreedy` in Algorithm 2): walk down the
/// tree as long as a child matches the LLM's argmax token; the first
/// mismatching argmax becomes the bonus token.
///
/// `llm_logits` are the tree-parallel decoding outputs, one row per
/// linearized position.
///
/// # Panics
///
/// Panics if `llm_logits` has fewer rows than the linearized tree.
pub fn verify_greedy(tree: &TokenTree, lin: &LinearizedTree, llm_logits: &Tensor) -> VerifyOutcome {
    assert!(
        llm_logits.rows() >= lin.len(),
        "one logit row per tree node required"
    );
    let mut walk = VerifyWalk::new();
    advance_greedy(&mut walk, tree, lin, &TensorRows(llm_logits));
    walk.into_outcome()
}

/// Stochastic verification via **multi-step speculative sampling**
/// (`VerifyStochastic` in Algorithm 2, illustrated in Figure 5).
///
/// At each node `u`, candidate children are tried in uniformly random
/// order: candidate `x` (proposed by SSM `s`) is accepted with probability
/// `min(1, P(x)/Q_s(x))` against the *current* LLM distribution `P`; on
/// rejection `P ← norm(max(0, P − Q_s))` and the candidate is removed.
/// When no candidate survives (or a leaf is reached) the bonus token is
/// drawn from the current `P` — which is exactly what makes the overall
/// output distribution equal to incremental decoding (Theorem 4.2).
///
/// # Panics
///
/// Panics if a tried child has no recorded SSM distribution (the
/// speculator always records one) or logits rows are missing.
pub fn verify_stochastic(
    tree: &TokenTree,
    lin: &LinearizedTree,
    llm_logits: &Tensor,
    dists: &SsmDistTable,
    mode: &DecodeMode,
    rng: &mut SeededRng,
) -> VerifyOutcome {
    assert!(
        llm_logits.rows() >= lin.len(),
        "one logit row per tree node required"
    );
    let mut walk = VerifyWalk::new();
    advance_stochastic(
        &mut walk,
        tree,
        lin,
        &TensorRows(llm_logits),
        dists,
        mode,
        rng,
    );
    walk.into_outcome()
}

/// `P ← norm(max(0, P − Q))`, Algorithm 2 line 37.
fn residual_update(p: &mut [f32], q: &[f32]) {
    let mut total = 0.0;
    for (pv, qv) in p.iter_mut().zip(q) {
        *pv = (*pv - qv).max(0.0);
        total += *pv;
    }
    if total > 1e-12 {
        for pv in p.iter_mut() {
            *pv /= total;
        }
    } else {
        // Degenerate: Q dominates P exactly (only reachable through
        // floating-point cancellation). Fall back to uniform over the
        // support of P before subtraction — any choice here has measure
        // zero; we just must not emit NaNs.
        let n = p.len() as f32;
        for pv in p.iter_mut() {
            *pv = 1.0 / n;
        }
    }
}

/// Naive-sampling verification (§4.3): draw the next token from the LLM
/// distribution and accept it only if it happens to be a child in the
/// tree. Trivially preserves the LLM distribution, but rejects more than
/// MSS (Theorem 4.3) — the Table 3 baseline.
pub fn verify_naive(
    tree: &TokenTree,
    lin: &LinearizedTree,
    llm_logits: &Tensor,
    mode: &DecodeMode,
    rng: &mut SeededRng,
) -> VerifyOutcome {
    assert!(
        llm_logits.rows() >= lin.len(),
        "one logit row per tree node required"
    );
    let mut walk = VerifyWalk::new();
    advance_naive(&mut walk, tree, lin, &TensorRows(llm_logits), mode, rng);
    walk.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use specinfer_tokentree::LinearizedTree;

    /// Builds a toy tree with hand-set logits so verification paths are
    /// fully controlled. Vocab = 4.
    struct Fixture {
        tree: TokenTree,
        lin: LinearizedTree,
        logits: Tensor,
        dists: SsmDistTable,
    }

    /// Tree: root(0) → a(1) → b(2); root also has child c(3).
    fn fixture(llm_rows: &[[f32; 4]]) -> Fixture {
        let mut tree = TokenTree::new(0);
        let a = tree.add_child(TokenTree::ROOT, 1, 0, 0.5);
        let _b = tree.add_child(a, 2, 0, 0.5);
        let _c = tree.add_child(TokenTree::ROOT, 3, 0, 0.3);
        let lin = LinearizedTree::new(&tree);
        // Rows are in linear order: root, a, b, c.
        let mut data = Vec::new();
        for (i, &u) in lin.nodes().iter().enumerate() {
            let _ = u;
            data.extend_from_slice(&llm_rows[i]);
        }
        let logits = Tensor::from_vec(data, &[lin.len(), 4]);
        let mut dists = SsmDistTable::new();
        for u in tree.node_ids() {
            dists.insert(u, 0, vec![0.25, 0.25, 0.25, 0.25]);
        }
        Fixture {
            tree,
            lin,
            logits,
            dists,
        }
    }

    const LO: f32 = -10.0;

    #[test]
    fn greedy_accepts_matching_path() {
        // LLM's argmax at root is 1 (matches a), at a is 2 (matches b),
        // at b is 3 (no child → bonus).
        let f = fixture(&[
            [LO, 5.0, LO, LO], // root → 1
            [LO, LO, 5.0, LO], // a → 2
            [LO, LO, LO, 5.0], // b → 3 (bonus)
            [5.0, LO, LO, LO], // c (unused)
        ]);
        let out = verify_greedy(&f.tree, &f.lin, &f.logits);
        assert_eq!(out.tokens, vec![1, 2, 3]);
        assert_eq!(out.accepted_speculated(), 2);
    }

    #[test]
    fn greedy_takes_alternate_branch() {
        // Root argmax is 3 → accepts c; c is a leaf → its argmax 0 is the
        // bonus.
        let f = fixture(&[
            [LO, LO, LO, 5.0], // root → 3 (child c)
            [LO, LO, 5.0, LO], // a (unused)
            [LO, LO, LO, 5.0], // b (unused)
            [5.0, LO, LO, LO], // c → 0 (bonus)
        ]);
        let out = verify_greedy(&f.tree, &f.lin, &f.logits);
        assert_eq!(out.tokens, vec![3, 0]);
        assert_eq!(out.accepted_speculated(), 1);
    }

    #[test]
    fn greedy_rejects_everything_but_still_emits_bonus() {
        // Root argmax 2 matches no child.
        let f = fixture(&[[LO, LO, 5.0, LO], [0.0; 4], [0.0; 4], [0.0; 4]]);
        let out = verify_greedy(&f.tree, &f.lin, &f.logits);
        assert_eq!(out.tokens, vec![2]);
        assert!(out.nodes.is_empty());
    }

    #[test]
    fn mss_accepts_certain_candidate() {
        // LLM puts all mass on 1 at root and on 2 at a: both candidates
        // have ratio p/q = 1/0.25 > 1 → always accepted; bonus from b.
        let f = fixture(&[
            [LO, 5.0, LO, LO],
            [LO, LO, 5.0, LO],
            [5.0, LO, LO, LO],
            [0.0; 4],
        ]);
        let mut rng = SeededRng::new(1);
        let out = verify_stochastic(
            &f.tree,
            &f.lin,
            &f.logits,
            &f.dists,
            &DecodeMode::stochastic(),
            &mut rng,
        );
        assert_eq!(out.tokens[..2], [1, 2]);
        assert_eq!(out.tokens.len(), 3);
        assert_eq!(out.accepted_speculated(), 2);
    }

    #[test]
    fn mss_rejects_zero_probability_candidates() {
        // LLM puts ~all mass on token 2 at the root; children are 1 and 3
        // with p≈0 → both rejected; the bonus must be 2.
        let f = fixture(&[[LO, LO, 20.0, LO], [0.0; 4], [0.0; 4], [0.0; 4]]);
        let mut rng = SeededRng::new(2);
        let out = verify_stochastic(
            &f.tree,
            &f.lin,
            &f.logits,
            &f.dists,
            &DecodeMode::stochastic(),
            &mut rng,
        );
        assert_eq!(out.tokens, vec![2]);
        assert!(out.nodes.is_empty());
    }

    #[test]
    fn naive_descends_only_on_sampled_match() {
        // Deterministic LLM: root → 1, a → 2, b → 0.
        let f = fixture(&[
            [LO, 20.0, LO, LO],
            [LO, LO, 20.0, LO],
            [20.0, LO, LO, LO],
            [0.0; 4],
        ]);
        let mut rng = SeededRng::new(3);
        let out = verify_naive(
            &f.tree,
            &f.lin,
            &f.logits,
            &DecodeMode::stochastic(),
            &mut rng,
        );
        assert_eq!(out.tokens, vec![1, 2, 0]);
        assert_eq!(out.accepted_speculated(), 2);
    }

    #[test]
    fn residual_update_normalizes() {
        let mut p = vec![0.5, 0.3, 0.2];
        residual_update(&mut p, &[0.5, 0.1, 0.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 0.5).abs() < 1e-6);
        assert!((p[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn residual_update_handles_total_cancellation() {
        let mut p = vec![0.5, 0.5];
        residual_update(&mut p, &[0.6, 0.6]);
        assert!(p.iter().all(|v| v.is_finite()));
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    /// Rows limited to linear indices below `avail` — simulates the
    /// hierarchical verifier's partially-forwarded state.
    struct PartialRows<'a> {
        tensor: &'a Tensor,
        avail: usize,
    }

    impl LogitRows for PartialRows<'_> {
        fn row(&self, idx: usize) -> Option<&[f32]> {
            if idx < self.avail {
                Some(self.tensor.row(idx))
            } else {
                None
            }
        }
    }

    #[test]
    fn paused_walks_resume_bitwise_identically() {
        let f = fixture(&[
            [LO, 5.0, LO, LO], // root → 1
            [LO, LO, 5.0, LO], // a → 2
            [LO, LO, LO, 5.0], // b → 3 (bonus)
            [5.0, LO, LO, LO], // c (unused)
        ]);
        let full = verify_greedy(&f.tree, &f.lin, &f.logits);
        for avail in 0..=f.lin.len() {
            let mut walk = VerifyWalk::new();
            advance_greedy(
                &mut walk,
                &f.tree,
                &f.lin,
                &PartialRows {
                    tensor: &f.logits,
                    avail,
                },
            );
            advance_greedy(&mut walk, &f.tree, &f.lin, &TensorRows(&f.logits));
            assert!(walk.is_done());
            assert_eq!(walk.into_outcome(), full, "greedy resume at avail={avail}");
        }
        // Stochastic walks must also consume the RNG stream identically
        // across a pause: same seed, same outcome, same post-state.
        for seed in 0..50u64 {
            let mut rng_full = SeededRng::new(seed);
            let full = verify_stochastic(
                &f.tree,
                &f.lin,
                &f.logits,
                &f.dists,
                &DecodeMode::stochastic(),
                &mut rng_full,
            );
            let probe = rng_full.below(1 << 30);
            for avail in 0..=f.lin.len() {
                let mut rng = SeededRng::new(seed);
                let mut walk = VerifyWalk::new();
                let mode = DecodeMode::stochastic();
                advance_stochastic(
                    &mut walk,
                    &f.tree,
                    &f.lin,
                    &PartialRows {
                        tensor: &f.logits,
                        avail,
                    },
                    &f.dists,
                    &mode,
                    &mut rng,
                );
                advance_stochastic(
                    &mut walk,
                    &f.tree,
                    &f.lin,
                    &TensorRows(&f.logits),
                    &f.dists,
                    &mode,
                    &mut rng,
                );
                assert!(walk.is_done());
                assert_eq!(walk.into_outcome(), full, "mss seed={seed} avail={avail}");
                assert_eq!(rng.below(1 << 30), probe, "rng stream must match");
            }
        }
    }

    #[test]
    fn outcomes_always_end_with_bonus() {
        let f = fixture(&[[0.0; 4], [0.0; 4], [0.0; 4], [0.0; 4]]);
        let mut rng = SeededRng::new(4);
        for _ in 0..20 {
            let g = verify_greedy(&f.tree, &f.lin, &f.logits);
            assert_eq!(g.tokens.len(), g.nodes.len() + 1);
            let s = verify_stochastic(
                &f.tree,
                &f.lin,
                &f.logits,
                &f.dists,
                &DecodeMode::stochastic(),
                &mut rng,
            );
            assert_eq!(s.tokens.len(), s.nodes.len() + 1);
            let n = verify_naive(
                &f.tree,
                &f.lin,
                &f.logits,
                &DecodeMode::stochastic(),
                &mut rng,
            );
            assert_eq!(n.tokens.len(), n.nodes.len() + 1);
        }
    }
}
