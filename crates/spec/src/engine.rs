//! The speculative generation engine: Algorithm 2's outer loop.
//!
//! A [`Session`] owns the per-request state (token sequence, LLM cache,
//! one cache per SSM) and advances one *decoding iteration* at a time —
//! exactly the granularity the serving layer's continuous batching
//! schedules. [`SpecEngine`] packages models + configuration for
//! single-request generation.

use specinfer_model::{sampler, DecodeMode, KvCache, Transformer};
use specinfer_tensor::rng::SeededRng;
use specinfer_tokentree::{ExpansionConfig, LinearizedTree, TokenId, TokenTree};

use crate::speculator::{
    expand_into, speculate_pool_parallel, ExpansionMode, Speculation, SsmDistTable,
};
use crate::verifier::{verify_greedy, verify_naive, verify_stochastic, StochasticVerifier};

/// Which inference algorithm drives a generation.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceMode {
    /// Ordinary incremental decoding (Algorithm 1) — one LLM pass per
    /// token. The baseline every system in Figure 7 implements.
    Incremental,
    /// Sequence-based speculative inference: a single SSM speculates a
    /// depth-`m` chain (tree width 1).
    SequenceSpeculative {
        /// Speculation depth `m`.
        depth: usize,
    },
    /// Tree-based speculative inference (the paper's contribution).
    TreeSpeculative {
        /// The expansion schedule ⟨k₁…k_m⟩ applied by every SSM.
        expansion: ExpansionConfig,
    },
    /// Best-first *dynamic* tree expansion — this repository's
    /// implementation of the paper's stated future work (§3). Uses the
    /// first SSM of the pool. Greedy verification stays exactly
    /// lossless; for stochastic decoding prefer the naive-sampling
    /// verifier (see [`crate::dynamic`] for the semantics discussion).
    DynamicTree {
        /// Budget and pruning knobs.
        config: crate::dynamic::DynamicExpansionConfig,
    },
}

/// Engine-level configuration shared across requests.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// How the LLM's output distribution is decoded.
    pub decode: DecodeMode,
    /// Stochastic verification algorithm (ignored under greedy decoding).
    pub verifier: StochasticVerifier,
    /// The inference algorithm.
    pub mode: InferenceMode,
    /// Stop after this many generated tokens (the paper uses 128).
    pub max_new_tokens: usize,
    /// Generation stops when this token is produced.
    pub eos_token: Option<TokenId>,
}

impl EngineConfig {
    /// Greedy tree-speculative config with the paper's default expansion.
    pub fn greedy_tree() -> Self {
        EngineConfig {
            decode: DecodeMode::Greedy,
            verifier: StochasticVerifier::MultiStep,
            mode: InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::paper_default(),
            },
            max_new_tokens: 128,
            eos_token: Some(specinfer_workload_eos()),
        }
    }
}

// The EOS convention of the workloads crate, duplicated here to avoid a
// dependency cycle; pinned by a test in the facade crate.
const fn specinfer_workload_eos() -> TokenId {
    1
}

/// Per-iteration statistics of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Nodes in the speculated tree (0 for incremental decoding).
    pub tree_size: usize,
    /// Speculated tokens that passed verification.
    pub accepted: usize,
    /// Tokens appended this iteration (accepted + bonus, or 1).
    pub emitted: usize,
}

/// The completed output of a generation.
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// Prompt plus all generated tokens (truncated at EOS if hit).
    pub tokens: Vec<TokenId>,
    /// Number of prompt tokens at the front of `tokens`.
    pub prompt_len: usize,
    /// Per-iteration statistics.
    pub steps: Vec<StepStats>,
}

impl GenerationResult {
    /// The generated tokens (everything after the prompt).
    pub fn generated(&self) -> &[TokenId] {
        &self.tokens[self.prompt_len..]
    }

    /// Number of LLM decoding iterations used.
    pub fn llm_steps(&self) -> usize {
        self.steps.len()
    }

    /// Mean number of tokens verified per LLM decoding step — the
    /// paper's Table 2 / Table 3 metric.
    pub fn tokens_per_step(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.generated().len() as f64 / self.steps.len() as f64
        }
    }
}

/// Per-request generation state, advanced one decoding iteration at a
/// time.
///
/// The KV-cache invariant maintained between iterations: every cache
/// (LLM and SSMs) holds rows for all tokens of the sequence *except the
/// last one* — the last token is the root the next speculated tree grows
/// from (Figure 4 feeds the verified token together with the speculated
/// ones).
#[derive(Debug)]
pub struct Session {
    tokens: Vec<TokenId>,
    prompt_len: usize,
    llm_cache: KvCache,
    ssm_caches: Vec<KvCache>,
    rng: SeededRng,
    steps: Vec<StepStats>,
    finished: bool,
}

impl Session {
    /// Starts a session: prefills the prompt (all but its last token)
    /// into the LLM cache and every SSM cache.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or longer than a model's
    /// `max_seq_len`.
    pub fn new(llm: &Transformer, ssms: &[&Transformer], prompt: &[TokenId], seed: u64) -> Self {
        assert!(!prompt.is_empty(), "prompt must hold at least one token");
        let mut llm_cache = llm.new_cache();
        if prompt.len() > 1 {
            let _ = llm.prefill(&prompt[..prompt.len() - 1], &mut llm_cache);
        }
        let ssm_caches = ssms
            .iter()
            .map(|ssm| {
                let mut c = ssm.new_cache();
                if prompt.len() > 1 {
                    let _ = ssm.prefill(&prompt[..prompt.len() - 1], &mut c);
                }
                c
            })
            .collect();
        Session {
            tokens: prompt.to_vec(),
            prompt_len: prompt.len(),
            llm_cache,
            ssm_caches,
            rng: SeededRng::new(seed),
            steps: Vec::new(),
            finished: false,
        }
    }

    /// The full token sequence so far (prompt included).
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Tokens generated so far.
    pub fn generated(&self) -> &[TokenId] {
        &self.tokens[self.prompt_len..]
    }

    /// Whether generation has hit EOS or its budget.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Per-iteration statistics so far.
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Runs one decoding iteration under `config`, using `ssms` for
    /// speculation (ignored for incremental mode). Returns the stats of
    /// the iteration, or `None` if the session was already finished.
    pub fn step(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        config: &EngineConfig,
    ) -> Option<StepStats> {
        if self.finished {
            return None;
        }
        // Context-window guard: when even one more row would overflow the
        // KV cache, the sequence has exhausted the model's context — end
        // the generation instead of panicking mid-flight.
        if self.llm_cache.len() + 1 > self.llm_cache.max_len() {
            self.finished = true;
            return None;
        }
        let stats = match &config.mode {
            InferenceMode::Incremental => self.step_incremental(llm, config),
            InferenceMode::SequenceSpeculative { depth } => {
                let expansion = ExpansionConfig::sequence(*depth);
                if self.speculation_fits(ssms, expansion.node_count()) {
                    self.step_speculative(llm, ssms, &expansion, config)
                } else {
                    self.step_incremental(llm, config)
                }
            }
            InferenceMode::TreeSpeculative { expansion } => {
                if self.speculation_fits(ssms, expansion.node_count()) {
                    self.step_speculative(llm, ssms, &expansion.clone(), config)
                } else {
                    // Near the context limit a full tree no longer fits;
                    // degrade to incremental decoding for the tail.
                    self.step_incremental(llm, config)
                }
            }
            InferenceMode::DynamicTree { config: dyn_cfg } => {
                if self.speculation_fits(ssms, dyn_cfg.max_nodes) {
                    self.step_dynamic(llm, ssms, &dyn_cfg.clone(), config)
                } else {
                    self.step_incremental(llm, config)
                }
            }
        };
        self.steps.push(stats);
        Some(stats)
    }

    /// Whether a speculated tree of up to `worst_nodes` nodes (plus the
    /// root) fits in every cache involved.
    fn speculation_fits(&self, ssms: &[&Transformer], worst_nodes: usize) -> bool {
        let need = worst_nodes + 1;
        if self.llm_cache.len() + need > self.llm_cache.max_len() {
            return false;
        }
        let _ = ssms;
        self.ssm_caches
            .iter()
            .all(|c| c.len() + need <= c.max_len())
    }

    fn step_incremental(&mut self, llm: &Transformer, config: &EngineConfig) -> StepStats {
        let last = *self.tokens.last().expect("prompt is non-empty");
        let logits = llm.decode_one(last, &mut self.llm_cache);
        let next = match &config.decode {
            DecodeMode::Greedy => sampler::greedy_token(logits.data()),
            mode => {
                let p = sampler::probs_from_logits(logits.data(), mode);
                sampler::sample_token(&p, &mut self.rng)
            }
        };
        self.tokens.push(next);
        self.check_termination(config, &[next]);
        StepStats {
            tree_size: 0,
            accepted: 0,
            emitted: 1,
        }
    }

    fn step_speculative(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        expansion: &ExpansionConfig,
        config: &EngineConfig,
    ) -> StepStats {
        assert!(!ssms.is_empty(), "speculative modes need at least one SSM");
        assert_eq!(
            ssms.len(),
            self.ssm_caches.len(),
            "the session was created for a different SSM pool"
        );
        let root = *self.tokens.last().expect("prompt is non-empty");
        let exp_mode = ExpansionMode::for_decode_mode(&config.decode);

        // Speculate (§3). A single SSM expands inline on the session's
        // RNG stream; a pool expands data-parallel — one thread, private
        // tree and forked RNG stream per SSM — and the private trees are
        // merged deterministically in pool order.
        let spec = if ssms.len() == 1 {
            let mut tree = TokenTree::new(root);
            let mut dists = SsmDistTable::new();
            expand_into(
                &mut tree,
                &mut dists,
                ssms[0],
                0,
                &mut self.ssm_caches[0],
                expansion,
                exp_mode,
                &mut self.rng,
            );
            Speculation { tree, dists }
        } else {
            let configs = vec![expansion.clone(); ssms.len()];
            speculate_pool_parallel(
                ssms,
                &mut self.ssm_caches,
                root,
                &configs,
                exp_mode,
                &mut self.rng,
            )
        };
        self.verify_and_commit(llm, ssms, spec, config)
    }

    fn step_dynamic(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        dyn_cfg: &crate::dynamic::DynamicExpansionConfig,
        config: &EngineConfig,
    ) -> StepStats {
        assert!(
            !ssms.is_empty(),
            "dynamic speculation needs at least one SSM"
        );
        assert_eq!(
            ssms.len(),
            self.ssm_caches.len(),
            "the session was created for a different SSM pool"
        );
        let root = *self.tokens.last().expect("prompt is non-empty");
        let spec =
            crate::dynamic::speculate_dynamic(ssms[0], &mut self.ssm_caches[0], root, dyn_cfg);
        self.verify_and_commit(llm, ssms, spec, config)
    }

    /// Verifies a speculation against the LLM in one tree-parallel pass,
    /// commits the accepted path to every cache and the token sequence,
    /// and returns the iteration's stats.
    fn verify_and_commit(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        spec: Speculation,
        config: &EngineConfig,
    ) -> StepStats {
        let root = *self.tokens.last().expect("prompt is non-empty");
        let lin = LinearizedTree::new(&spec.tree);
        let prefix = self.llm_cache.len();
        let llm_logits = llm.decode_tree(&lin, &mut self.llm_cache);
        let outcome = match &config.decode {
            DecodeMode::Greedy => verify_greedy(&spec.tree, &lin, &llm_logits),
            mode => match config.verifier {
                StochasticVerifier::MultiStep => verify_stochastic(
                    &spec.tree,
                    &lin,
                    &llm_logits,
                    &spec.dists,
                    mode,
                    &mut self.rng,
                ),
                StochasticVerifier::Naive => {
                    verify_naive(&spec.tree, &lin, &llm_logits, mode, &mut self.rng)
                }
            },
        };

        // Keep the accepted path (root + verified nodes) in the LLM cache.
        let mut keep: Vec<usize> = vec![0];
        keep.extend(outcome.nodes.iter().map(|&u| lin.index_of(u)));
        self.llm_cache.retain_rows(prefix, &keep);

        // SSM caches saw only the verified prefix; append the root and the
        // newly verified tokens (everything but the bonus) to restore the
        // invariant.
        let accepted = outcome.accepted_speculated();
        let mut replay = Vec::with_capacity(1 + accepted);
        replay.push(root);
        replay.extend_from_slice(&outcome.tokens[..accepted]);
        for (i, ssm) in ssms.iter().enumerate() {
            let _ = ssm.prefill(&replay, &mut self.ssm_caches[i]);
        }

        self.tokens.extend_from_slice(&outcome.tokens);
        self.check_termination(config, &outcome.tokens);
        StepStats {
            tree_size: spec.tree.speculated_len(),
            accepted,
            emitted: outcome.tokens.len(),
        }
    }

    fn check_termination(&mut self, config: &EngineConfig, new_tokens: &[TokenId]) {
        if let Some(eos) = config.eos_token {
            if let Some(rel) = new_tokens.iter().position(|&t| t == eos) {
                // Truncate right after the EOS token.
                let cut = self.tokens.len() - new_tokens.len() + rel + 1;
                self.tokens.truncate(cut);
                self.finished = true;
                return;
            }
        }
        if self.tokens.len() - self.prompt_len >= config.max_new_tokens {
            self.finished = true;
        }
    }

    /// Consumes the session into a [`GenerationResult`].
    pub fn into_result(self) -> GenerationResult {
        GenerationResult {
            tokens: self.tokens,
            prompt_len: self.prompt_len,
            steps: self.steps,
        }
    }
}

/// Convenience wrapper running whole generations: models + configuration.
///
/// # Example
///
/// ```
/// use specinfer_model::{ModelConfig, Transformer, DecodeMode};
/// use specinfer_spec::{EngineConfig, InferenceMode, SpecEngine, StochasticVerifier};
/// use specinfer_tokentree::ExpansionConfig;
///
/// let llm = Transformer::from_seed(ModelConfig::smoke(), 1);
/// let ssm = Transformer::from_seed(ModelConfig::smoke(), 2);
/// let config = EngineConfig {
///     decode: DecodeMode::Greedy,
///     verifier: StochasticVerifier::MultiStep,
///     mode: InferenceMode::TreeSpeculative { expansion: ExpansionConfig::new(vec![2, 2, 1]) },
///     max_new_tokens: 16,
///     eos_token: None,
/// };
/// let engine = SpecEngine::new(&llm, vec![&ssm], config);
/// let result = engine.generate(&[3, 1, 4], 7);
/// assert!(result.generated().len() >= 16);
/// ```
#[derive(Debug)]
pub struct SpecEngine<'m> {
    llm: &'m Transformer,
    ssms: Vec<&'m Transformer>,
    config: EngineConfig,
}

impl<'m> SpecEngine<'m> {
    /// Creates an engine over an LLM, a pool of SSMs and a configuration.
    pub fn new(llm: &'m Transformer, ssms: Vec<&'m Transformer>, config: EngineConfig) -> Self {
        SpecEngine { llm, ssms, config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs a full generation for `prompt`, seeded by `seed`.
    pub fn generate(&self, prompt: &[TokenId], seed: u64) -> GenerationResult {
        let mut session = Session::new(self.llm, &self.ssms, prompt, seed);
        while !session.is_finished() {
            let _ = session.step(self.llm, &self.ssms, &self.config);
        }
        session.into_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specinfer_model::ModelConfig;

    fn models() -> (Transformer, Transformer) {
        // SSM = the LLM's own little sibling (same seed family) so greedy
        // speculation has nontrivial accept rates even untrained.
        let llm = Transformer::from_seed(ModelConfig::smoke(), 100);
        let ssm = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..ModelConfig::smoke()
            },
            101,
        );
        (llm, ssm)
    }

    fn config(mode: InferenceMode, decode: DecodeMode) -> EngineConfig {
        EngineConfig {
            decode,
            verifier: StochasticVerifier::MultiStep,
            mode,
            max_new_tokens: 24,
            eos_token: None,
        }
    }

    #[test]
    fn incremental_generates_budgeted_tokens() {
        let (llm, _) = models();
        let engine = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        );
        let r = engine.generate(&[1, 2, 3], 0);
        assert_eq!(r.generated().len(), 24);
        assert_eq!(r.llm_steps(), 24);
        assert!((r.tokens_per_step() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_tree_spec_matches_incremental_exactly() {
        let (llm, ssm) = models();
        let inc = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[5, 9, 2], 0);
        let tree = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::new(vec![2, 2, 1, 1]),
                },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[5, 9, 2], 0);
        // Lossless guarantee: identical output, fewer LLM steps.
        let n = inc.generated().len().min(tree.generated().len());
        assert_eq!(&inc.generated()[..n], &tree.generated()[..n]);
        assert!(tree.llm_steps() <= inc.llm_steps());
    }

    #[test]
    fn sequence_spec_is_tree_of_width_one() {
        let (llm, ssm) = models();
        let r = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::SequenceSpeculative { depth: 4 },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[7, 7, 7], 1);
        for s in &r.steps {
            assert!(s.tree_size <= 4);
            assert_eq!(s.emitted, s.accepted + 1);
        }
    }

    #[test]
    fn self_speculation_accepts_everything_greedy() {
        // When the SSM *is* the LLM, greedy speculation of a chain must be
        // accepted in full every step: emitted = depth + 1.
        let (llm, _) = models();
        let depth = 4;
        let r = SpecEngine::new(
            &llm,
            vec![&llm],
            config(
                InferenceMode::SequenceSpeculative { depth },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[2, 3], 0);
        for s in &r.steps {
            assert_eq!(s.accepted, depth, "self-speculation must fully verify");
            assert_eq!(s.emitted, depth + 1);
        }
    }

    #[test]
    fn stochastic_modes_produce_budgeted_output() {
        let (llm, ssm) = models();
        for verifier in [StochasticVerifier::MultiStep, StochasticVerifier::Naive] {
            let mut cfg = config(
                InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::new(vec![2, 1, 1]),
                },
                DecodeMode::stochastic(),
            );
            cfg.verifier = verifier;
            let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[4, 4], 3);
            assert!(r.generated().len() >= 24);
            for s in &r.steps {
                assert_eq!(s.emitted, s.accepted + 1);
            }
        }
    }

    #[test]
    fn eos_terminates_and_truncates() {
        let (llm, ssm) = models();
        // Find the greedy continuation and use its second token as EOS so
        // termination happens mid-stream.
        let probe = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[6, 1, 6], 0);
        let eos = probe.generated()[1];
        let mut cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 1, 1]),
            },
            DecodeMode::Greedy,
        );
        cfg.eos_token = Some(eos);
        let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[6, 1, 6], 0);
        assert_eq!(*r.tokens.last().unwrap(), eos);
        assert_eq!(r.generated().len(), 2, "output must stop right after EOS");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2]),
            },
            DecodeMode::stochastic(),
        );
        let engine = SpecEngine::new(&llm, vec![&ssm], cfg);
        let a = engine.generate(&[8, 3], 42);
        let b = engine.generate(&[8, 3], 42);
        assert_eq!(a.tokens, b.tokens);
        let c = engine.generate(&[8, 3], 43);
        assert_ne!(a.tokens, c.tokens, "different seeds should diverge");
    }

    #[test]
    fn session_stops_stepping_after_finish() {
        let (llm, _) = models();
        let cfg = config(InferenceMode::Incremental, DecodeMode::Greedy);
        let mut s = Session::new(&llm, &[], &[1], 0);
        for _ in 0..24 {
            assert!(s.step(&llm, &[], &cfg).is_some());
        }
        assert!(s.is_finished());
        assert!(s.step(&llm, &[], &cfg).is_none());
    }

    #[test]
    fn context_exhaustion_degrades_then_finishes() {
        // A model with a tiny context window: the engine must fall back
        // to incremental steps near the limit and stop cleanly at it,
        // never panicking on cache overflow.
        let cfg_model = ModelConfig {
            max_seq_len: 18,
            ..ModelConfig::smoke()
        };
        let llm = Transformer::from_seed(cfg_model.clone(), 300);
        let ssm = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..cfg_model
            },
            301,
        );
        let mut cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2, 1]),
            },
            DecodeMode::Greedy,
        );
        cfg.max_new_tokens = 100; // far beyond the context window
        let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[1, 2, 3], 0);
        // Sequence length (prompt + generated) never exceeds max_seq_len
        // by more than the final bonus token that is never cached.
        assert!(r.tokens.len() <= 18 + 1, "{} tokens", r.tokens.len());
        assert!(!r.generated().is_empty());
    }

    #[test]
    fn dynamic_tree_is_lossless_under_greedy() {
        let (llm, ssm) = models();
        let inc = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[3, 8, 1], 0);
        let dynamic = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::DynamicTree {
                    config: crate::dynamic::DynamicExpansionConfig::default(),
                },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[3, 8, 1], 0);
        let n = inc.generated().len().min(dynamic.generated().len());
        assert_eq!(&inc.generated()[..n], &dynamic.generated()[..n]);
        assert!(dynamic.llm_steps() <= inc.llm_steps());
        assert!(dynamic.steps.iter().all(|s| s.tree_size <= 20));
    }

    #[test]
    fn multi_ssm_sessions_track_their_pool() {
        let (llm, ssm) = models();
        let ssm2 = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..ModelConfig::smoke()
            },
            202,
        );
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![1, 1, 1]),
            },
            DecodeMode::Greedy,
        );
        let r = SpecEngine::new(&llm, vec![&ssm, &ssm2], cfg).generate(&[9, 9], 5);
        assert!(r.generated().len() >= 24);
        // Merged speculation from two distinct SSMs yields trees of up to
        // 6 nodes (two depth-3 chains).
        assert!(r.steps.iter().all(|s| s.tree_size <= 6));
    }
}
