//! The speculative generation engine: Algorithm 2's outer loop.
//!
//! A [`Session`] owns the per-request state (token sequence, LLM cache,
//! one cache per SSM) and advances one *decoding iteration* at a time —
//! exactly the granularity the serving layer's continuous batching
//! schedules. [`SpecEngine`] packages models + configuration for
//! single-request generation.

use std::collections::VecDeque;

use specinfer_model::{sampler, DecodeMode, KvCache, Transformer, Visibility};
use specinfer_tensor::rng::SeededRng;
use specinfer_tensor::Tensor;
use specinfer_tokentree::{ExpansionConfig, LinearizedTree, TokenId, TokenTree};

use crate::controller::{
    draft_flop_weight, AdaptiveConfig, AdaptiveDecision, ControllerSnapshot, DraftShape,
    SpecController,
};
use crate::speculator::{
    expand_into, speculate_garbage, speculate_pool_parallel, ExpansionMode, Speculation,
    SsmDistTable,
};
use crate::verifier::{
    verify_greedy, verify_naive, verify_stochastic, StochasticVerifier, VerifyOutcome,
};

/// Which inference algorithm drives a generation.
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceMode {
    /// Ordinary incremental decoding (Algorithm 1) — one LLM pass per
    /// token. The baseline every system in Figure 7 implements.
    Incremental,
    /// Sequence-based speculative inference: a single SSM speculates a
    /// depth-`m` chain (tree width 1).
    SequenceSpeculative {
        /// Speculation depth `m`.
        depth: usize,
    },
    /// Tree-based speculative inference (the paper's contribution).
    TreeSpeculative {
        /// The expansion schedule ⟨k₁…k_m⟩ applied by every SSM.
        expansion: ExpansionConfig,
    },
    /// Best-first *dynamic* tree expansion — this repository's
    /// implementation of the paper's stated future work (§3). Uses the
    /// first SSM of the pool. Greedy verification stays exactly
    /// lossless; for stochastic decoding prefer the naive-sampling
    /// verifier (see [`crate::dynamic`] for the semantics discussion).
    DynamicTree {
        /// Budget and pruning knobs.
        config: crate::dynamic::DynamicExpansionConfig,
    },
    /// Online per-request adaptive speculation (ROADMAP item 3): a
    /// [`SpecController`] inside each session tracks acceptance EWMAs and
    /// picks every iteration's draft shape from a ladder spanning
    /// incremental ⇄ sequence ⇄ dynamic ⇄ `paper_default`, plus the SSM
    /// to draft with (SPIN-style accepted-per-draft-FLOP routing). Greedy
    /// decoding stays exactly lossless for every shape on the ladder; the
    /// stochastic ladder uses sampled drafts only, preserving MSS
    /// exactness (Theorem 4.2).
    Adaptive {
        /// Controller tuning (EWMA factors, hysteresis, probe period).
        config: AdaptiveConfig,
    },
}

/// Engine-level configuration shared across requests.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// How the LLM's output distribution is decoded.
    pub decode: DecodeMode,
    /// Stochastic verification algorithm (ignored under greedy decoding).
    pub verifier: StochasticVerifier,
    /// The inference algorithm.
    pub mode: InferenceMode,
    /// Stop after this many generated tokens (the paper uses 128).
    pub max_new_tokens: usize,
    /// Generation stops when this token is produced.
    pub eos_token: Option<TokenId>,
}

impl EngineConfig {
    /// Greedy tree-speculative config with the paper's default expansion.
    pub fn greedy_tree() -> Self {
        EngineConfig {
            decode: DecodeMode::Greedy,
            verifier: StochasticVerifier::MultiStep,
            mode: InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::paper_default(),
            },
            max_new_tokens: 128,
            eos_token: Some(specinfer_workload_eos()),
        }
    }

    /// Worst-case KV rows one decoding iteration appends before commit
    /// compacts back to the accepted path: the speculated node count
    /// plus the tree root, or a single row when incremental.
    ///
    /// A session whose LLM cache holds
    /// `prompt_len + max_new_tokens + speculation_rows()` rows can never
    /// hit a capacity guard that a full-capacity session would not also
    /// hit, so budgeted sessions stay bitwise-identical to unbudgeted
    /// ones (see [`Session::try_new_budgeted`]).
    pub fn speculation_rows(&self) -> usize {
        match &self.mode {
            InferenceMode::Incremental => 1,
            InferenceMode::SequenceSpeculative { depth } => {
                ExpansionConfig::sequence(*depth).node_count() + 1
            }
            InferenceMode::TreeSpeculative { expansion } => expansion.node_count() + 1,
            InferenceMode::DynamicTree { config } => config.max_nodes + 1,
            // The adaptive ladder tops out at paper_default, so the
            // worst case over every rung the controller can pick is the
            // paper tree plus the root. Reserving this keeps budgeted
            // adaptive sessions bitwise-identical to full-capacity ones
            // no matter how the controller moves; the per-iteration cost
            // of the rung actually chosen is
            // [`Session::current_speculation_rows`].
            InferenceMode::Adaptive { .. } => ExpansionConfig::paper_default().node_count() + 1,
        }
    }
}

// The EOS convention of the workloads crate, duplicated here to avoid a
// dependency cycle; pinned by a test in the facade crate.
const fn specinfer_workload_eos() -> TokenId {
    1
}

/// Faults injected into one decoding iteration of one session.
///
/// Produced by the serving layer's deterministic fault plan and consumed
/// by [`Session::step_faulted`]. All faults are *lossless under greedy
/// decoding*: a stalled or garbage SSM degrades throughput (the engine
/// falls back to incremental decoding or rejects the drafts) but never
/// changes the emitted tokens, so a chaos run's surviving outputs are
/// comparable bit-for-bit against a fault-free run of the same seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepFault {
    /// The SSM pool emits garbage logits this iteration: drafts are drawn
    /// uniformly from the vocabulary by a dedicated RNG with this seed
    /// (the session's own RNG stream is untouched).
    pub ssm_garbage: Option<u64>,
    /// The SSM pool stalls this iteration: no speculation is available
    /// and the engine decodes one token incrementally.
    pub ssm_stall: bool,
    /// The KV arena reports (simulated) memory pressure: speculated rows
    /// cannot be allocated, so the engine decodes incrementally.
    pub kv_oom: bool,
}

impl StepFault {
    /// Whether no fault is injected.
    pub fn is_noop(&self) -> bool {
        self.ssm_garbage.is_none() && !self.ssm_stall && !self.kv_oom
    }
}

/// When and how a session abandons speculation (the degradation ladder).
///
/// A session watches the acceptance fraction (accepted / tree size) over
/// a sliding window of speculative iterations. When the mean falls below
/// `accept_floor` — an SSM emitting garbage, or simply a hopeless prompt
/// — speculating costs more than it saves, so the session *falls back* to
/// incremental decoding for `cooldown` iterations, then re-probes
/// speculation. Fallback and recovery are pure functions of the step
/// statistics, so seeded runs stay deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Mean acceptance fraction below which speculation is abandoned.
    pub accept_floor: f64,
    /// Number of speculative iterations averaged; `0` disables the
    /// ladder entirely.
    pub window: usize,
    /// Incremental iterations served before re-probing speculation.
    pub cooldown: usize,
}

impl DegradationPolicy {
    /// The ladder the serving layer enables by default.
    pub fn serving_default() -> Self {
        DegradationPolicy {
            accept_floor: 0.1,
            window: 4,
            cooldown: 6,
        }
    }

    /// Never falls back (the engine's historical behaviour).
    pub fn disabled() -> Self {
        DegradationPolicy {
            accept_floor: 0.0,
            window: 0,
            cooldown: 0,
        }
    }

    /// Whether the ladder is active.
    pub fn is_enabled(&self) -> bool {
        self.window > 0
    }
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy::serving_default()
    }
}

/// Counters of faults absorbed and fallbacks taken by one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Iterations that had any fault injected.
    pub faulted_steps: usize,
    /// Iterations forced incremental by a stall or simulated OOM.
    pub forced_incremental: usize,
    /// Times the acceptance ladder switched to incremental decoding.
    pub fallbacks_taken: usize,
    /// Iterations served incrementally while in fallback.
    pub fallback_steps: usize,
    /// Times the session re-probed speculation after a cooldown.
    pub reprobes: usize,
}

/// Per-iteration statistics of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Nodes in the speculated tree (0 for incremental decoding).
    pub tree_size: usize,
    /// Speculated tokens that passed verification.
    pub accepted: usize,
    /// Tokens appended this iteration (accepted + bonus, or 1).
    pub emitted: usize,
}

/// The completed output of a generation.
#[derive(Debug, Clone)]
pub struct GenerationResult {
    /// Prompt plus all generated tokens (truncated at EOS if hit).
    pub tokens: Vec<TokenId>,
    /// Number of prompt tokens at the front of `tokens`.
    pub prompt_len: usize,
    /// Per-iteration statistics.
    pub steps: Vec<StepStats>,
}

impl GenerationResult {
    /// The generated tokens (everything after the prompt).
    pub fn generated(&self) -> &[TokenId] {
        self.tokens.get(self.prompt_len..).unwrap_or(&[])
    }

    /// Number of LLM decoding iterations used.
    pub fn llm_steps(&self) -> usize {
        self.steps.len()
    }

    /// Mean number of tokens verified per LLM decoding step — the
    /// paper's Table 2 / Table 3 metric.
    pub fn tokens_per_step(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.generated().len() as f64 / self.steps.len() as f64
        }
    }
}

/// A rejected generation request.
///
/// This is the *request-facing* fallible surface of the engine: bad
/// inputs (empty or oversized prompts) come back as values so a serving
/// daemon can retire one request instead of panicking a whole batch.
/// Invariant violations inside a healthy session still panic loudly
/// (`assert!`/`unreachable!`) — see ARCHITECTURE.md §8 for the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The prompt holds no tokens; there is nothing to root a tree on.
    EmptyPrompt,
    /// The prompt exceeds a participating model's context window.
    PromptTooLong {
        /// Prompt length in tokens.
        len: usize,
        /// The smallest `max_seq_len` across the LLM and the SSM pool.
        max: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::EmptyPrompt => write!(f, "prompt must hold at least one token"),
            EngineError::PromptTooLong { len, max } => {
                write!(
                    f,
                    "prompt of {len} tokens exceeds the context window ({max})"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// One proposed decoding iteration, produced by [`Session::propose`].
///
/// Splitting the old monolithic step at the LLM-forward boundary is what
/// lets [`crate::BatchedVerifier`] fuse the verification forwards of
/// many sessions into one stacked pass: speculation (phase 1) and
/// sampling/commit (phase 3) stay per-session, while phase 2 — the only
/// part that touches the LLM — batches.
#[derive(Debug)]
pub(crate) struct Proposal {
    kind: ProposalKind,
    speculative_mode: bool,
    forced_incremental: bool,
    in_fallback: bool,
    /// The controller decision behind this proposal (adaptive mode only);
    /// fed back to the controller at commit.
    decision: Option<AdaptiveDecision>,
}

#[derive(Debug)]
enum ProposalKind {
    /// One ordinary causal row: the sequence's last token.
    Incremental,
    /// A speculated token tree awaiting tree-parallel verification.
    /// Boxed so the dataless `Incremental` variant doesn't inflate every
    /// `Proposal` to the tree payload's size.
    Tree(Box<TreeProposal>),
}

#[derive(Debug)]
struct TreeProposal {
    spec: Speculation,
    lin: LinearizedTree,
}

impl ProposalKind {
    fn tree(spec: Speculation) -> Self {
        let lin = LinearizedTree::new(&spec.tree);
        ProposalKind::Tree(Box::new(TreeProposal { spec, lin }))
    }
}

impl Proposal {
    /// The linearized tree to verify, or `None` for an incremental row.
    pub(crate) fn tree(&self) -> Option<&LinearizedTree> {
        match &self.kind {
            ProposalKind::Tree(t) => Some(&t.lin),
            ProposalKind::Incremental => None,
        }
    }

    /// The speculation and its linearization, or `None` for an
    /// incremental row. The hierarchical batched verifier drives the
    /// verification walk itself and needs the draft distributions.
    pub(crate) fn speculation(&self) -> Option<(&Speculation, &LinearizedTree)> {
        match &self.kind {
            ProposalKind::Tree(t) => Some((&t.spec, &t.lin)),
            ProposalKind::Incremental => None,
        }
    }

    /// Whether a fault (stall/OOM) forced this proposal incremental.
    /// The batched verifier routes such proposals through the serial
    /// path so a faulted request never poisons its batch-mates.
    pub(crate) fn forced_incremental(&self) -> bool {
        self.forced_incremental
    }
}

/// Per-request generation state, advanced one decoding iteration at a
/// time.
///
/// The KV-cache invariant maintained between iterations: every cache
/// (LLM and SSMs) holds rows for all tokens of the sequence *except the
/// last one* — the last token is the root the next speculated tree grows
/// from (Figure 4 feeds the verified token together with the speculated
/// ones).
#[derive(Debug)]
pub struct Session {
    tokens: Vec<TokenId>,
    prompt_len: usize,
    llm_cache: KvCache,
    ssm_caches: Vec<KvCache>,
    rng: SeededRng,
    steps: Vec<StepStats>,
    finished: bool,
    policy: DegradationPolicy,
    degradation: DegradationStats,
    accept_window: VecDeque<f64>,
    fallback_until: Option<usize>,
    /// Adaptive speculation state, installed lazily on the first
    /// [`InferenceMode::Adaptive`] proposal (it needs the SSM pool's FLOP
    /// weights, which only arrive with the first step).
    controller: Option<SpecController>,
}

impl Session {
    /// Starts a session: prefills the prompt (all but its last token)
    /// into the LLM cache and every SSM cache.
    ///
    /// This is the panicking convenience constructor for trusted callers
    /// (tests, benches, the CLI). Serving paths use [`Session::try_new`]
    /// and retire the request on `Err` instead.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or longer than a model's
    /// `max_seq_len`.
    pub fn new(llm: &Transformer, ssms: &[&Transformer], prompt: &[TokenId], seed: u64) -> Self {
        match Session::try_new(llm, ssms, prompt, seed) {
            Ok(s) => s,
            Err(e) => panic!("invalid generation request: {e}"),
        }
    }

    /// Fallible [`Session::new`]: rejects empty prompts and prompts that
    /// cannot fit any participating model's context window.
    pub fn try_new(
        llm: &Transformer,
        ssms: &[&Transformer],
        prompt: &[TokenId],
        seed: u64,
    ) -> Result<Self, EngineError> {
        Session::try_new_budgeted(llm, ssms, prompt, seed, usize::MAX)
    }

    /// [`Session::try_new`] with the LLM KV slab sized to `kv_rows`
    /// instead of the model's full `max_seq_len`.
    ///
    /// Ragged serving right-sizes each session's slab so hundreds of
    /// short requests fit in memory at once. A budget of at least
    /// `prompt.len() + max_new_tokens +`
    /// [`EngineConfig::speculation_rows`] is provably sufficient for
    /// bitwise-identical behavior to the full-capacity session: the last
    /// decoding iteration starts with at most `prompt + max_new − 2`
    /// committed rows, so neither the context-exhaustion guard nor the
    /// speculation-fits check can trigger before generation finishes.
    /// Smaller budgets are accepted but degrade to incremental decoding
    /// (and eventually early termination) near the capacity limit.
    pub fn try_new_budgeted(
        llm: &Transformer,
        ssms: &[&Transformer],
        prompt: &[TokenId],
        seed: u64,
        kv_rows: usize,
    ) -> Result<Self, EngineError> {
        if prompt.is_empty() {
            return Err(EngineError::EmptyPrompt);
        }
        let max = ssms
            .iter()
            .map(|s| s.config().max_seq_len)
            .fold(llm.config().max_seq_len, usize::min);
        if prompt.len() > max {
            return Err(EngineError::PromptTooLong {
                len: prompt.len(),
                max,
            });
        }
        // Everything but the last token is prefilled; the last token
        // roots the first speculated tree.
        let head = prompt.split_last().map(|(_, h)| h).unwrap_or(&[]);
        let mut llm_cache = llm.new_cache_with_capacity(kv_rows.max(prompt.len()));
        if !head.is_empty() {
            let _ = llm.prefill(head, &mut llm_cache);
        }
        let ssm_caches = ssms
            .iter()
            .map(|ssm| {
                let mut c = ssm.new_cache();
                if !head.is_empty() {
                    let _ = ssm.prefill(head, &mut c);
                }
                c
            })
            .collect();
        Ok(Session {
            tokens: prompt.to_vec(),
            prompt_len: prompt.len(),
            llm_cache,
            ssm_caches,
            rng: SeededRng::new(seed),
            steps: Vec::new(),
            finished: false,
            policy: DegradationPolicy::disabled(),
            degradation: DegradationStats::default(),
            accept_window: VecDeque::new(),
            fallback_until: None,
            controller: None,
        })
    }

    /// The root for the next speculated tree: the last token of the
    /// sequence. [`Session::try_new`] guarantees a non-empty prompt and
    /// decoding only appends, so the sequence can never be empty.
    pub(crate) fn last_token(&self) -> TokenId {
        match self.tokens.last() {
            Some(&t) => t,
            None => unreachable!("sessions always hold at least the prompt"),
        }
    }

    /// Committed length of the LLM KV cache (rows of verified context).
    pub(crate) fn llm_cache_len(&self) -> usize {
        self.llm_cache.len()
    }

    /// Committed KV rows of verified context (public mirror of
    /// [`Session::llm_cache_len`], for occupancy accounting).
    pub fn kv_rows(&self) -> usize {
        self.llm_cache.len()
    }

    /// Capacity of the LLM KV slab in rows — `max_seq_len` for
    /// [`Session::try_new`], the clamped budget for
    /// [`Session::try_new_budgeted`].
    pub fn kv_capacity(&self) -> usize {
        self.llm_cache.max_len()
    }

    /// The LLM KV cache, for the batched verifier's stacked forward.
    pub(crate) fn llm_cache_mut(&mut self) -> &mut KvCache {
        &mut self.llm_cache
    }

    /// The session's RNG stream, for the hierarchical batched verifier's
    /// out-of-session stochastic walks. Consumed node-by-node exactly as
    /// the serial verifier would.
    pub(crate) fn rng_mut(&mut self) -> &mut SeededRng {
        &mut self.rng
    }

    /// Speculation rows the session's *next* iteration will actually
    /// append: the controller's current rung under
    /// [`InferenceMode::Adaptive`], the static worst case otherwise.
    /// This is the per-request occupancy cost `admit_budgeted` charges —
    /// the width-vs-batch-depth tradeoff: a request parked at incremental
    /// frees ~20 rows of budget for admitting more batch-mates.
    pub fn current_speculation_rows(&self, config: &EngineConfig) -> usize {
        match (&config.mode, &self.controller) {
            (InferenceMode::Adaptive { .. }, Some(c)) => c.current_rows(),
            _ => config.speculation_rows(),
        }
    }

    /// Telemetry snapshot of the adaptive controller, if this session has
    /// one (i.e. it stepped under [`InferenceMode::Adaptive`]).
    pub fn controller_snapshot(&self) -> Option<ControllerSnapshot> {
        self.controller.as_ref().map(|c| c.snapshot())
    }

    /// Enables (or replaces) the acceptance-collapse degradation ladder.
    pub fn set_degradation_policy(&mut self, policy: DegradationPolicy) {
        self.policy = policy;
    }

    /// Counters of faults absorbed and fallbacks taken so far.
    pub fn degradation(&self) -> DegradationStats {
        self.degradation
    }

    /// Whether the session is currently decoding incrementally because
    /// the degradation ladder fell back.
    pub fn in_fallback(&self) -> bool {
        self.fallback_until
            .is_some_and(|until| self.steps.len() < until)
    }

    /// The full token sequence so far (prompt included).
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Tokens generated so far.
    pub fn generated(&self) -> &[TokenId] {
        self.tokens.get(self.prompt_len..).unwrap_or(&[])
    }

    /// Whether generation has hit EOS or its budget.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Per-iteration statistics so far.
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Runs one decoding iteration under `config`, using `ssms` for
    /// speculation (ignored for incremental mode). Returns the stats of
    /// the iteration, or `None` if the session was already finished.
    pub fn step(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        config: &EngineConfig,
    ) -> Option<StepStats> {
        self.step_faulted(llm, ssms, config, StepFault::default())
    }

    /// Like [`Session::step`], but with `fault` injected into the
    /// iteration. A stall or simulated OOM forces incremental decoding;
    /// garbage logits replace the SSM drafts with uniform draws (which
    /// greedy verification rejects and stochastic verification absorbs
    /// via the residual, keeping the output distribution exact). The
    /// degradation ladder ([`DegradationPolicy`]) watches acceptance and
    /// falls back to incremental decoding when speculation collapses.
    pub fn step_faulted(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        config: &EngineConfig,
        fault: StepFault,
    ) -> Option<StepStats> {
        let proposal = self.propose(llm, ssms, config, fault)?;
        let logits = self.forward_proposal(llm, &proposal);
        Some(self.commit(ssms, config, proposal, &logits))
    }

    /// Phase 1 of an iteration: decide what the LLM must verify.
    ///
    /// Runs the fault/fallback bookkeeping and — for speculative modes —
    /// the whole SSM expansion, consuming the session's RNG stream
    /// exactly as [`Session::step_faulted`] always has. Returns `None`
    /// when the session is finished (or just exhausted its context).
    /// The returned [`Proposal`] must be carried through
    /// [`Session::forward_proposal`] and [`Session::commit`] before the
    /// session can step again.
    pub(crate) fn propose(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        config: &EngineConfig,
        fault: StepFault,
    ) -> Option<Proposal> {
        if self.finished {
            return None;
        }
        // Context-window guard: when even one more row would overflow the
        // KV cache, the sequence has exhausted the model's context — end
        // the generation instead of panicking mid-flight.
        if self.llm_cache.len() + 1 > self.llm_cache.max_len() {
            self.finished = true;
            return None;
        }
        if !fault.is_noop() {
            self.degradation.faulted_steps += 1;
        }
        let idx = self.steps.len();
        // Cooldown over → re-probe speculation with a fresh window.
        if let Some(until) = self.fallback_until {
            if idx >= until {
                self.fallback_until = None;
                self.degradation.reprobes += 1;
                self.accept_window.clear();
            }
        }
        let speculative_mode = !matches!(config.mode, InferenceMode::Incremental);
        let forced_incremental = speculative_mode && (fault.ssm_stall || fault.kv_oom);
        let in_fallback = speculative_mode && self.fallback_until.is_some();

        let mut decision = None;
        let kind = if forced_incremental {
            self.degradation.forced_incremental += 1;
            ProposalKind::Incremental
        } else if in_fallback {
            self.degradation.fallback_steps += 1;
            ProposalKind::Incremental
        } else {
            match &config.mode {
                InferenceMode::Incremental => ProposalKind::Incremental,
                InferenceMode::SequenceSpeculative { depth } => {
                    let expansion = ExpansionConfig::sequence(*depth);
                    if self.speculation_fits(ssms, expansion.node_count()) {
                        self.propose_speculative(llm, ssms, &expansion, config, fault.ssm_garbage)
                    } else {
                        ProposalKind::Incremental
                    }
                }
                InferenceMode::TreeSpeculative { expansion } => {
                    if self.speculation_fits(ssms, expansion.node_count()) {
                        self.propose_speculative(llm, ssms, expansion, config, fault.ssm_garbage)
                    } else {
                        // Near the context limit a full tree no longer fits;
                        // degrade to incremental decoding for the tail.
                        ProposalKind::Incremental
                    }
                }
                InferenceMode::DynamicTree { config: dyn_cfg } => {
                    if self.speculation_fits(ssms, dyn_cfg.max_nodes) {
                        self.propose_dynamic(llm, ssms, dyn_cfg, 0, fault.ssm_garbage)
                    } else {
                        ProposalKind::Incremental
                    }
                }
                InferenceMode::Adaptive { config: acfg } => {
                    if ssms.is_empty() {
                        // No drafters: adaptive degenerates to incremental.
                        ProposalKind::Incremental
                    } else {
                        self.ensure_controller(acfg, config, ssms);
                        let d = match self.controller.as_mut() {
                            Some(c) => c.decide(),
                            None => unreachable!("ensure_controller installs one"),
                        };
                        if matches!(d.shape, DraftShape::Incremental) {
                            decision = Some(d);
                            ProposalKind::Incremental
                        } else if self.speculation_fits(ssms, d.shape.node_count()) {
                            let kind =
                                self.propose_adaptive(llm, ssms, &d, config, fault.ssm_garbage);
                            decision = Some(d);
                            kind
                        } else {
                            // Near the context limit the chosen shape no
                            // longer fits: decode incrementally and drop
                            // the decision so the controller is not
                            // penalized for a draft that never ran.
                            ProposalKind::Incremental
                        }
                    }
                }
            }
        };
        Some(Proposal {
            kind,
            speculative_mode,
            forced_incremental,
            in_fallback,
            decision,
        })
    }

    /// Installs the adaptive controller on first use: it needs the SSM
    /// pool's relative draft-FLOP weights, which only arrive with the
    /// first proposal.
    fn ensure_controller(
        &mut self,
        acfg: &AdaptiveConfig,
        config: &EngineConfig,
        ssms: &[&Transformer],
    ) {
        if self.controller.is_none() {
            let flops: Vec<f32> = ssms.iter().map(|s| draft_flop_weight(s.config())).collect();
            self.controller = Some(SpecController::new(
                acfg.clone(),
                config.decode.is_greedy(),
                flops,
            ));
        }
    }

    /// Phase 2: the single LLM forward pass verifying `proposal` —
    /// either one incremental row or a whole linearized tree. This is the
    /// only phase [`crate::BatchedVerifier`] replaces: it fuses the
    /// forwards of many sessions into one stacked pass.
    pub(crate) fn forward_proposal(&mut self, llm: &Transformer, proposal: &Proposal) -> Tensor {
        match &proposal.kind {
            ProposalKind::Incremental => {
                let last = self.last_token();
                let pos = self.llm_cache.len();
                llm.forward_rows(&[last], &[pos], &mut self.llm_cache, Visibility::Causal)
            }
            ProposalKind::Tree(t) => llm.decode_tree(&t.lin, &mut self.llm_cache),
        }
    }

    /// Phase 3: consume the LLM logits for `proposal` — sample or
    /// verify, compact the KV cache to the accepted path, replay the SSM
    /// caches, feed the degradation ladder and record the step.
    pub(crate) fn commit(
        &mut self,
        ssms: &[&Transformer],
        config: &EngineConfig,
        proposal: Proposal,
        logits: &Tensor,
    ) -> StepStats {
        let Proposal {
            kind,
            speculative_mode,
            forced_incremental,
            in_fallback,
            decision,
        } = proposal;
        let stats = match kind {
            ProposalKind::Incremental => self.commit_incremental(config, logits),
            ProposalKind::Tree(t) => {
                let TreeProposal { spec, lin } = *t;
                self.commit_tree(ssms, config, spec, lin, logits)
            }
        };
        self.finish_step(
            speculative_mode,
            forced_incremental,
            in_fallback,
            decision,
            stats,
        )
    }

    /// Commits a tree proposal whose verification already ran *outside*
    /// the session — the hierarchical batched verifier runs the walk
    /// itself across two forward passes. `outcome` is the finished walk's
    /// result, `prefix` the LLM-cache length from before any verify rows
    /// were appended, and `keep` the strictly-increasing positions
    /// (relative to `prefix`) of the root + accepted rows within the
    /// cache's current appended tail, whatever two-pass layout it has.
    pub(crate) fn commit_verified(
        &mut self,
        ssms: &[&Transformer],
        config: &EngineConfig,
        proposal: Proposal,
        outcome: VerifyOutcome,
        prefix: usize,
        keep: Vec<usize>,
    ) -> StepStats {
        let Proposal {
            kind,
            speculative_mode,
            forced_incremental,
            in_fallback,
            decision,
        } = proposal;
        let spec = match kind {
            ProposalKind::Tree(t) => t.spec,
            ProposalKind::Incremental => {
                unreachable!("commit_verified requires a tree proposal")
            }
        };
        let stats = self.apply_tree_outcome(ssms, config, &spec, outcome, prefix, keep);
        self.finish_step(
            speculative_mode,
            forced_incremental,
            in_fallback,
            decision,
            stats,
        )
    }

    /// Shared tail of every commit path: feed the adaptive controller and
    /// the degradation ladder, record the step.
    fn finish_step(
        &mut self,
        speculative_mode: bool,
        forced_incremental: bool,
        in_fallback: bool,
        decision: Option<AdaptiveDecision>,
        stats: StepStats,
    ) -> StepStats {
        let idx = self.steps.len();
        if let (Some(c), Some(d)) = (self.controller.as_mut(), decision.as_ref()) {
            c.observe(d, stats.accepted);
        }
        // Feed the ladder with the acceptance of speculative iterations.
        if self.policy.is_enabled()
            && speculative_mode
            && !forced_incremental
            && !in_fallback
            && stats.tree_size > 0
        {
            self.accept_window
                .push_back(stats.accepted as f64 / stats.tree_size as f64);
            while self.accept_window.len() > self.policy.window {
                self.accept_window.pop_front();
            }
            if self.accept_window.len() == self.policy.window {
                let mean: f64 = self.accept_window.iter().sum::<f64>() / self.policy.window as f64;
                if mean < self.policy.accept_floor {
                    self.degradation.fallbacks_taken += 1;
                    self.fallback_until = Some(idx + 1 + self.policy.cooldown);
                    self.accept_window.clear();
                }
            }
        }
        self.steps.push(stats);
        stats
    }

    /// Whether a speculated tree of up to `worst_nodes` nodes (plus the
    /// root) fits in every cache involved.
    fn speculation_fits(&self, ssms: &[&Transformer], worst_nodes: usize) -> bool {
        let need = worst_nodes + 1;
        if self.llm_cache.len() + need > self.llm_cache.max_len() {
            return false;
        }
        let _ = ssms;
        self.ssm_caches
            .iter()
            .all(|c| c.len() + need <= c.max_len())
    }

    fn commit_incremental(&mut self, config: &EngineConfig, logits: &Tensor) -> StepStats {
        let next = match &config.decode {
            DecodeMode::Greedy => sampler::greedy_token(logits.data()),
            mode => {
                let p = sampler::probs_from_logits(logits.data(), mode);
                sampler::sample_token(&p, &mut self.rng)
            }
        };
        self.tokens.push(next);
        self.check_termination(config, &[next]);
        StepStats {
            tree_size: 0,
            accepted: 0,
            emitted: 1,
        }
    }

    fn propose_speculative(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        expansion: &ExpansionConfig,
        config: &EngineConfig,
        garbage: Option<u64>,
    ) -> ProposalKind {
        assert!(!ssms.is_empty(), "speculative modes need at least one SSM");
        assert_eq!(
            ssms.len(),
            self.ssm_caches.len(),
            "the session was created for a different SSM pool"
        );
        let root = self.last_token();
        let exp_mode = ExpansionMode::for_decode_mode(&config.decode);

        // A garbage-logits fault replaces the whole pool's drafts with
        // uniform draws; the SSMs (and their caches) are not consulted.
        if let Some(seed) = garbage {
            let spec = speculate_garbage(root, expansion, llm.config().vocab_size, seed);
            return ProposalKind::tree(spec);
        }

        // Speculate (§3). A single SSM expands inline on the session's
        // RNG stream; a pool expands data-parallel — one thread, private
        // tree and forked RNG stream per SSM — and the private trees are
        // merged deterministically in pool order.
        let spec = match (ssms, self.ssm_caches.as_mut_slice()) {
            ([ssm], [cache]) => {
                let mut tree = TokenTree::new(root);
                let mut dists = SsmDistTable::new();
                expand_into(
                    &mut tree,
                    &mut dists,
                    ssm,
                    0,
                    cache,
                    expansion,
                    exp_mode,
                    &mut self.rng,
                );
                Speculation { tree, dists }
            }
            _ => {
                let configs: Vec<&ExpansionConfig> = vec![expansion; ssms.len()];
                speculate_pool_parallel(
                    ssms,
                    &mut self.ssm_caches,
                    root,
                    &configs,
                    exp_mode,
                    &mut self.rng,
                )
            }
        };
        ProposalKind::tree(spec)
    }

    fn propose_dynamic(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        dyn_cfg: &crate::dynamic::DynamicExpansionConfig,
        ssm_id: usize,
        garbage: Option<u64>,
    ) -> ProposalKind {
        assert!(
            !ssms.is_empty(),
            "dynamic speculation needs at least one SSM"
        );
        assert_eq!(
            ssms.len(),
            self.ssm_caches.len(),
            "the session was created for a different SSM pool"
        );
        let root = self.last_token();
        if let Some(seed) = garbage {
            // A garbage dynamic tree degenerates to a uniform chain no
            // deeper than the configured budget.
            let depth = dyn_cfg.max_depth.clamp(1, dyn_cfg.max_nodes.max(1));
            let expansion = ExpansionConfig::sequence(depth);
            let spec = speculate_garbage(root, &expansion, llm.config().vocab_size, seed);
            return ProposalKind::tree(spec);
        }
        let (ssm, cache) = match (ssms.get(ssm_id), self.ssm_caches.get_mut(ssm_id)) {
            (Some(&s), Some(c)) => (s, c),
            _ => unreachable!("dynamic speculation routed outside the SSM pool"),
        };
        let spec = crate::dynamic::speculate_dynamic(ssm, cache, root, dyn_cfg, ssm_id);
        ProposalKind::tree(spec)
    }

    /// Verifies a speculation whose tree forward already ran (the rows
    /// sit uncompacted at the tail of the LLM cache), commits the
    /// accepted path to every cache and the token sequence, and returns
    /// the iteration's stats.
    fn commit_tree(
        &mut self,
        ssms: &[&Transformer],
        config: &EngineConfig,
        spec: Speculation,
        lin: LinearizedTree,
        llm_logits: &Tensor,
    ) -> StepStats {
        // The forward appended one cache row per tree node; everything
        // before those rows is the verified prefix to compact onto.
        let prefix = self.llm_cache.len() - lin.len();
        let outcome = match &config.decode {
            DecodeMode::Greedy => verify_greedy(&spec.tree, &lin, llm_logits),
            mode => match config.verifier {
                StochasticVerifier::MultiStep => verify_stochastic(
                    &spec.tree,
                    &lin,
                    llm_logits,
                    &spec.dists,
                    mode,
                    &mut self.rng,
                ),
                StochasticVerifier::Naive => {
                    verify_naive(&spec.tree, &lin, llm_logits, mode, &mut self.rng)
                }
            },
        };
        // Keep the accepted path (root + verified nodes): in single-pass
        // layout the appended tail is the whole linearization.
        let mut keep: Vec<usize> = vec![0];
        keep.extend(outcome.nodes.iter().map(|&u| lin.index_of(u)));
        self.apply_tree_outcome(ssms, config, &spec, outcome, prefix, keep)
    }

    /// Applies a finished tree verification: compacts the LLM cache onto
    /// `keep` (positions relative to `prefix` in the cache's current
    /// appended-tail layout), replays the accepted path into every SSM
    /// cache, extends the token sequence and checks termination.
    fn apply_tree_outcome(
        &mut self,
        ssms: &[&Transformer],
        config: &EngineConfig,
        spec: &Speculation,
        outcome: VerifyOutcome,
        prefix: usize,
        keep: Vec<usize>,
    ) -> StepStats {
        let root = self.last_token();
        self.llm_cache.retain_rows(prefix, &keep);

        // SSM caches saw only the verified prefix; append the root and the
        // newly verified tokens (everything but the bonus) to restore the
        // invariant.
        let accepted = outcome.accepted_speculated();
        let mut replay = Vec::with_capacity(1 + accepted);
        replay.push(root);
        // The verifier emits accepted tokens first, bonus last, so the
        // first `accepted` entries always exist.
        replay.extend_from_slice(outcome.tokens.get(..accepted).unwrap_or(&[]));
        for (ssm, cache) in ssms.iter().zip(self.ssm_caches.iter_mut()) {
            let _ = ssm.prefill(&replay, cache);
        }

        self.tokens.extend_from_slice(&outcome.tokens);
        self.check_termination(config, &outcome.tokens);
        StepStats {
            tree_size: spec.tree.speculated_len(),
            accepted,
            emitted: outcome.tokens.len(),
        }
    }

    /// Drafts one adaptive-mode iteration: the controller-chosen shape,
    /// expanded by the controller-chosen SSM alone on the session's RNG
    /// stream.
    fn propose_adaptive(
        &mut self,
        llm: &Transformer,
        ssms: &[&Transformer],
        decision: &AdaptiveDecision,
        config: &EngineConfig,
        garbage: Option<u64>,
    ) -> ProposalKind {
        assert!(
            !ssms.is_empty(),
            "adaptive speculation needs at least one SSM"
        );
        assert_eq!(
            ssms.len(),
            self.ssm_caches.len(),
            "the session was created for a different SSM pool"
        );
        let root = self.last_token();
        let exp_mode = ExpansionMode::for_decode_mode(&config.decode);

        if let Some(seed) = garbage {
            // Garbage faults replace the draft with uniform draws in an
            // equivalent static shape; the controller still observes the
            // (collapsed) acceptance and parks itself.
            let expansion = match &decision.shape {
                DraftShape::Incremental => {
                    unreachable!("incremental decisions never reach propose_adaptive")
                }
                DraftShape::Sequence(m) => ExpansionConfig::sequence(*m),
                DraftShape::Dynamic(c) => {
                    let depth = c.max_depth.clamp(1, c.max_nodes.max(1));
                    ExpansionConfig::sequence(depth)
                }
                DraftShape::Tree(e) => e.clone(),
            };
            let spec = speculate_garbage(root, &expansion, llm.config().vocab_size, seed);
            return ProposalKind::tree(spec);
        }

        let (ssm, cache) = match (
            ssms.get(decision.ssm),
            self.ssm_caches.get_mut(decision.ssm),
        ) {
            (Some(&s), Some(c)) => (s, c),
            _ => unreachable!("controller routes within the SSM pool"),
        };
        let spec = match &decision.shape {
            DraftShape::Incremental => {
                unreachable!("incremental decisions never reach propose_adaptive")
            }
            DraftShape::Sequence(m) => {
                let expansion = ExpansionConfig::sequence(*m);
                let mut tree = TokenTree::new(root);
                let mut dists = SsmDistTable::new();
                expand_into(
                    &mut tree,
                    &mut dists,
                    ssm,
                    decision.ssm,
                    cache,
                    &expansion,
                    exp_mode,
                    &mut self.rng,
                );
                Speculation { tree, dists }
            }
            DraftShape::Tree(expansion) => {
                let mut tree = TokenTree::new(root);
                let mut dists = SsmDistTable::new();
                expand_into(
                    &mut tree,
                    &mut dists,
                    ssm,
                    decision.ssm,
                    cache,
                    expansion,
                    exp_mode,
                    &mut self.rng,
                );
                Speculation { tree, dists }
            }
            DraftShape::Dynamic(dyn_cfg) => {
                crate::dynamic::speculate_dynamic(ssm, cache, root, dyn_cfg, decision.ssm)
            }
        };
        ProposalKind::tree(spec)
    }

    fn check_termination(&mut self, config: &EngineConfig, new_tokens: &[TokenId]) {
        if let Some(eos) = config.eos_token {
            if let Some(rel) = new_tokens.iter().position(|&t| t == eos) {
                // Truncate right after the EOS token.
                let cut = self.tokens.len() - new_tokens.len() + rel + 1;
                self.tokens.truncate(cut);
                self.finished = true;
                return;
            }
        }
        if self.tokens.len() - self.prompt_len >= config.max_new_tokens {
            self.finished = true;
        }
    }

    /// Consumes the session into a [`GenerationResult`].
    pub fn into_result(self) -> GenerationResult {
        GenerationResult {
            tokens: self.tokens,
            prompt_len: self.prompt_len,
            steps: self.steps,
        }
    }
}

/// Convenience wrapper running whole generations: models + configuration.
///
/// # Example
///
/// ```
/// use specinfer_model::{ModelConfig, Transformer, DecodeMode};
/// use specinfer_spec::{EngineConfig, InferenceMode, SpecEngine, StochasticVerifier};
/// use specinfer_tokentree::ExpansionConfig;
///
/// let llm = Transformer::from_seed(ModelConfig::smoke(), 1);
/// let ssm = Transformer::from_seed(ModelConfig::smoke(), 2);
/// let config = EngineConfig {
///     decode: DecodeMode::Greedy,
///     verifier: StochasticVerifier::MultiStep,
///     mode: InferenceMode::TreeSpeculative { expansion: ExpansionConfig::new(vec![2, 2, 1]) },
///     max_new_tokens: 16,
///     eos_token: None,
/// };
/// let engine = SpecEngine::new(&llm, vec![&ssm], config);
/// let result = engine.generate(&[3, 1, 4], 7);
/// assert!(result.generated().len() >= 16);
/// ```
#[derive(Debug)]
pub struct SpecEngine<'m> {
    llm: &'m Transformer,
    ssms: Vec<&'m Transformer>,
    config: EngineConfig,
}

impl<'m> SpecEngine<'m> {
    /// Creates an engine over an LLM, a pool of SSMs and a configuration.
    pub fn new(llm: &'m Transformer, ssms: Vec<&'m Transformer>, config: EngineConfig) -> Self {
        SpecEngine { llm, ssms, config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs a full generation for `prompt`, seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid request (see [`Session::new`]); serving
    /// paths use [`SpecEngine::try_generate`].
    pub fn generate(&self, prompt: &[TokenId], seed: u64) -> GenerationResult {
        let mut session = Session::new(self.llm, &self.ssms, prompt, seed);
        while !session.is_finished() {
            let _ = session.step(self.llm, &self.ssms, &self.config);
        }
        session.into_result()
    }

    /// Fallible [`SpecEngine::generate`]: a bad request comes back as an
    /// [`EngineError`] instead of panicking.
    pub fn try_generate(
        &self,
        prompt: &[TokenId],
        seed: u64,
    ) -> Result<GenerationResult, EngineError> {
        let mut session = Session::try_new(self.llm, &self.ssms, prompt, seed)?;
        while !session.is_finished() {
            let _ = session.step(self.llm, &self.ssms, &self.config);
        }
        Ok(session.into_result())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specinfer_model::ModelConfig;

    fn models() -> (Transformer, Transformer) {
        // SSM = the LLM's own little sibling (same seed family) so greedy
        // speculation has nontrivial accept rates even untrained.
        let llm = Transformer::from_seed(ModelConfig::smoke(), 100);
        let ssm = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..ModelConfig::smoke()
            },
            101,
        );
        (llm, ssm)
    }

    fn config(mode: InferenceMode, decode: DecodeMode) -> EngineConfig {
        EngineConfig {
            decode,
            verifier: StochasticVerifier::MultiStep,
            mode,
            max_new_tokens: 24,
            eos_token: None,
        }
    }

    #[test]
    fn incremental_generates_budgeted_tokens() {
        let (llm, _) = models();
        let engine = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        );
        let r = engine.generate(&[1, 2, 3], 0);
        assert_eq!(r.generated().len(), 24);
        assert_eq!(r.llm_steps(), 24);
        assert!((r.tokens_per_step() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_tree_spec_matches_incremental_exactly() {
        let (llm, ssm) = models();
        let inc = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[5, 9, 2], 0);
        let tree = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::new(vec![2, 2, 1, 1]),
                },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[5, 9, 2], 0);
        // Lossless guarantee: identical output, fewer LLM steps.
        let n = inc.generated().len().min(tree.generated().len());
        assert_eq!(&inc.generated()[..n], &tree.generated()[..n]);
        assert!(tree.llm_steps() <= inc.llm_steps());
    }

    #[test]
    fn sequence_spec_is_tree_of_width_one() {
        let (llm, ssm) = models();
        let r = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::SequenceSpeculative { depth: 4 },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[7, 7, 7], 1);
        for s in &r.steps {
            assert!(s.tree_size <= 4);
            assert_eq!(s.emitted, s.accepted + 1);
        }
    }

    #[test]
    fn self_speculation_accepts_everything_greedy() {
        // When the SSM *is* the LLM, greedy speculation of a chain must be
        // accepted in full every step: emitted = depth + 1.
        let (llm, _) = models();
        let depth = 4;
        let r = SpecEngine::new(
            &llm,
            vec![&llm],
            config(
                InferenceMode::SequenceSpeculative { depth },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[2, 3], 0);
        for s in &r.steps {
            assert_eq!(s.accepted, depth, "self-speculation must fully verify");
            assert_eq!(s.emitted, depth + 1);
        }
    }

    #[test]
    fn stochastic_modes_produce_budgeted_output() {
        let (llm, ssm) = models();
        for verifier in [StochasticVerifier::MultiStep, StochasticVerifier::Naive] {
            let mut cfg = config(
                InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::new(vec![2, 1, 1]),
                },
                DecodeMode::stochastic(),
            );
            cfg.verifier = verifier;
            let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[4, 4], 3);
            assert!(r.generated().len() >= 24);
            for s in &r.steps {
                assert_eq!(s.emitted, s.accepted + 1);
            }
        }
    }

    #[test]
    fn eos_terminates_and_truncates() {
        let (llm, ssm) = models();
        // Find the greedy continuation and use its second token as EOS so
        // termination happens mid-stream.
        let probe = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[6, 1, 6], 0);
        let eos = probe.generated()[1];
        let mut cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 1, 1]),
            },
            DecodeMode::Greedy,
        );
        cfg.eos_token = Some(eos);
        let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[6, 1, 6], 0);
        assert_eq!(*r.tokens.last().unwrap(), eos);
        assert_eq!(r.generated().len(), 2, "output must stop right after EOS");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2]),
            },
            DecodeMode::stochastic(),
        );
        let engine = SpecEngine::new(&llm, vec![&ssm], cfg);
        let a = engine.generate(&[8, 3], 42);
        let b = engine.generate(&[8, 3], 42);
        assert_eq!(a.tokens, b.tokens);
        let c = engine.generate(&[8, 3], 43);
        assert_ne!(a.tokens, c.tokens, "different seeds should diverge");
    }

    #[test]
    fn session_stops_stepping_after_finish() {
        let (llm, _) = models();
        let cfg = config(InferenceMode::Incremental, DecodeMode::Greedy);
        let mut s = Session::new(&llm, &[], &[1], 0);
        for _ in 0..24 {
            assert!(s.step(&llm, &[], &cfg).is_some());
        }
        assert!(s.is_finished());
        assert!(s.step(&llm, &[], &cfg).is_none());
    }

    #[test]
    fn context_exhaustion_degrades_then_finishes() {
        // A model with a tiny context window: the engine must fall back
        // to incremental steps near the limit and stop cleanly at it,
        // never panicking on cache overflow.
        let cfg_model = ModelConfig {
            max_seq_len: 18,
            ..ModelConfig::smoke()
        };
        let llm = Transformer::from_seed(cfg_model.clone(), 300);
        let ssm = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..cfg_model
            },
            301,
        );
        let mut cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2, 1]),
            },
            DecodeMode::Greedy,
        );
        cfg.max_new_tokens = 100; // far beyond the context window
        let r = SpecEngine::new(&llm, vec![&ssm], cfg).generate(&[1, 2, 3], 0);
        // Sequence length (prompt + generated) never exceeds max_seq_len
        // by more than the final bonus token that is never cached.
        assert!(r.tokens.len() <= 18 + 1, "{} tokens", r.tokens.len());
        assert!(!r.generated().is_empty());
    }

    #[test]
    fn dynamic_tree_is_lossless_under_greedy() {
        let (llm, ssm) = models();
        let inc = SpecEngine::new(
            &llm,
            vec![],
            config(InferenceMode::Incremental, DecodeMode::Greedy),
        )
        .generate(&[3, 8, 1], 0);
        let dynamic = SpecEngine::new(
            &llm,
            vec![&ssm],
            config(
                InferenceMode::DynamicTree {
                    config: crate::dynamic::DynamicExpansionConfig::default(),
                },
                DecodeMode::Greedy,
            ),
        )
        .generate(&[3, 8, 1], 0);
        let n = inc.generated().len().min(dynamic.generated().len());
        assert_eq!(&inc.generated()[..n], &dynamic.generated()[..n]);
        assert!(dynamic.llm_steps() <= inc.llm_steps());
        assert!(dynamic.steps.iter().all(|s| s.tree_size <= 20));
    }

    #[test]
    fn garbage_ssm_fault_is_lossless_under_greedy() {
        // With garbage SSM logits injected on every step, greedy
        // verification rejects the junk drafts and the output must be
        // bit-identical to a fault-free run.
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2, 1]),
            },
            DecodeMode::Greedy,
        );
        let clean = SpecEngine::new(&llm, vec![&ssm], cfg.clone()).generate(&[5, 9, 2], 0);

        let mut s = Session::new(&llm, &[&ssm], &[5, 9, 2], 0);
        let mut step = 0u64;
        while !s.is_finished() {
            let fault = StepFault {
                ssm_garbage: Some(0xfa017 ^ step),
                ..StepFault::default()
            };
            let _ = s.step_faulted(&llm, &[&ssm], &cfg, fault);
            step += 1;
        }
        assert!(s.degradation().faulted_steps > 0);
        let faulted = s.into_result();
        assert_eq!(clean.tokens, faulted.tokens);
    }

    #[test]
    fn stall_and_oom_force_incremental_steps() {
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 1]),
            },
            DecodeMode::Greedy,
        );
        let clean = SpecEngine::new(&llm, vec![&ssm], cfg.clone()).generate(&[7, 3], 0);

        let mut s = Session::new(&llm, &[&ssm], &[7, 3], 0);
        let mut i = 0usize;
        while !s.is_finished() {
            let fault = StepFault {
                ssm_stall: i.is_multiple_of(2),
                kv_oom: i % 2 == 1,
                ..StepFault::default()
            };
            let stats = s.step_faulted(&llm, &[&ssm], &cfg, fault).unwrap();
            assert_eq!(stats.tree_size, 0, "faulted step must not speculate");
            assert_eq!(stats.emitted, 1);
            i += 1;
        }
        let d = s.degradation();
        assert_eq!(d.forced_incremental, i);
        assert_eq!(d.faulted_steps, i);
        // Forced-incremental greedy decoding is still lossless.
        assert_eq!(s.into_result().tokens, clean.tokens);
    }

    #[test]
    fn acceptance_collapse_falls_back_and_reprobes() {
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 2]),
            },
            DecodeMode::Greedy,
        );
        let mut cfg = cfg;
        cfg.max_new_tokens = 40;
        let clean = SpecEngine::new(&llm, vec![&ssm], cfg.clone()).generate(&[4, 8], 0);

        let mut s = Session::new(&llm, &[&ssm], &[4, 8], 0);
        s.set_degradation_policy(DegradationPolicy {
            accept_floor: 0.5,
            window: 2,
            cooldown: 3,
        });
        let mut step = 0u64;
        while !s.is_finished() {
            // Garbage on every probe ⇒ acceptance collapses ⇒ the ladder
            // must fall back, cool down, re-probe, and collapse again.
            let fault = StepFault {
                ssm_garbage: Some(step),
                ..StepFault::default()
            };
            let stats = s.step_faulted(&llm, &[&ssm], &cfg, fault).unwrap();
            if s.in_fallback() {
                assert!(stats.emitted >= 1);
            }
            step += 1;
        }
        let d = s.degradation();
        assert!(d.fallbacks_taken >= 1, "{d:?}");
        // Every fallback serves its cooldown incrementally (the last one
        // may be cut short by the generation budget).
        assert!(d.fallback_steps >= (d.fallbacks_taken - 1) * 3, "{d:?}");
        assert!(d.reprobes >= 1, "{d:?}");
        assert_eq!(s.into_result().tokens, clean.tokens, "fallback is lossless");
    }

    #[test]
    fn disabled_ladder_never_falls_back() {
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 1]),
            },
            DecodeMode::Greedy,
        );
        let mut s = Session::new(&llm, &[&ssm], &[1, 2], 0);
        let mut step = 0u64;
        while !s.is_finished() {
            let fault = StepFault {
                ssm_garbage: Some(step),
                ..StepFault::default()
            };
            let _ = s.step_faulted(&llm, &[&ssm], &cfg, fault);
            step += 1;
        }
        let d = s.degradation();
        assert_eq!(d.fallbacks_taken, 0);
        assert_eq!(d.fallback_steps, 0);
    }

    #[test]
    fn garbage_fault_preserves_stochastic_budget() {
        // Under stochastic decoding garbage drafts flow through the MSS
        // residual path; generation still completes its budget and every
        // step emits accepted + 1 tokens.
        let (llm, ssm) = models();
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![2, 1]),
            },
            DecodeMode::stochastic(),
        );
        let mut s = Session::new(&llm, &[&ssm], &[6, 6], 9);
        let mut step = 0u64;
        while !s.is_finished() {
            let fault = StepFault {
                ssm_garbage: Some(step),
                ..StepFault::default()
            };
            let stats = s.step_faulted(&llm, &[&ssm], &cfg, fault).unwrap();
            assert_eq!(stats.emitted, stats.accepted + 1);
            step += 1;
        }
        assert!(s.generated().len() >= 24);
    }

    #[test]
    fn multi_ssm_sessions_track_their_pool() {
        let (llm, ssm) = models();
        let ssm2 = Transformer::from_seed(
            ModelConfig {
                d_model: 8,
                n_heads: 2,
                n_layers: 1,
                d_ff: 16,
                ..ModelConfig::smoke()
            },
            202,
        );
        let cfg = config(
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::new(vec![1, 1, 1]),
            },
            DecodeMode::Greedy,
        );
        let r = SpecEngine::new(&llm, vec![&ssm, &ssm2], cfg).generate(&[9, 9], 5);
        assert!(r.generated().len() >= 24);
        // Merged speculation from two distinct SSMs yields trees of up to
        // 6 nodes (two depth-3 chains).
        assert!(r.steps.iter().all(|s| s.tree_size <= 6));
    }
}
