//! Dynamic (best-first) token tree expansion — the paper's stated future
//! work ("dynamically expanding a token tree from an SSM is an open
//! research problem", §3) implemented as an extension.
//!
//! Instead of a static ⟨k₁…k_m⟩ schedule, the speculator grows the tree
//! *best-first*: it keeps a max-heap of candidate children scored by
//! their path probability under the SSM (`∏ q` along the root path) and
//! materializes the globally most promising candidate until a node
//! budget is exhausted. Width therefore concentrates exactly where the
//! SSM is uncertain, instead of at a fixed step.
//!
//! Verification semantics: greedy verification remains exactly lossless
//! for any tree. Stochastic verification of a *deterministically*
//! expanded tree should use the naive-sampling verifier (which preserves
//! the LLM's distribution for arbitrary trees); multi-step speculative
//! sampling's guarantee (Theorem 4.2) is proved for *sampled* drafts.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use specinfer_model::{sampler, DecodeMode, KvCache, Transformer, Visibility};
use specinfer_tokentree::{NodeId, TokenId, TokenTree};

use crate::speculator::{Speculation, SsmDistTable};

/// Budget and pruning knobs for best-first expansion.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicExpansionConfig {
    /// Maximum speculated nodes per tree (the compute budget the static
    /// schedule would spend; the paper's default schedule spends 20).
    pub max_nodes: usize,
    /// Maximum depth below the root.
    pub max_depth: usize,
    /// Candidates whose path probability falls below this threshold are
    /// never materialized.
    pub prob_threshold: f32,
    /// At most this many children are considered per node.
    pub max_children: usize,
}

impl Default for DynamicExpansionConfig {
    fn default() -> Self {
        DynamicExpansionConfig {
            max_nodes: 20,
            max_depth: 8,
            prob_threshold: 1e-3,
            max_children: 4,
        }
    }
}

#[derive(Debug)]
struct Candidate {
    score: f32,
    parent: NodeId,
    token: TokenId,
    prob: f32,
    depth: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
    }
}

/// Best-first speculation from a single SSM.
///
/// `cache` must hold the verified prefix (everything but the root token)
/// and is restored before returning, mirroring
/// [`crate::speculator::expand_into`]. `ssm_id` tags every node and
/// distribution with the drafting SSM's pool index, so the adaptive
/// controller can route dynamic drafts to any pool member.
///
/// # Panics
///
/// Panics if the configuration is degenerate (`max_nodes == 0`,
/// `max_children == 0`) or the cache would overflow.
pub fn speculate_dynamic(
    ssm: &Transformer,
    cache: &mut KvCache,
    root_token: TokenId,
    config: &DynamicExpansionConfig,
    ssm_id: usize,
) -> Speculation {
    assert!(config.max_nodes > 0, "node budget must be positive");
    assert!(config.max_children > 0, "max_children must be positive");
    let prefix = cache.len();
    let root_pos = prefix;

    let mut tree = TokenTree::new(root_token);
    let mut dists = SsmDistTable::new();
    let mut ancestor_rows: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut path_prob: HashMap<usize, f32> = HashMap::new();
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();

    // Helper: run the SSM on one materialized node and enqueue its
    // children candidates.
    let process = |u: NodeId,
                   tree: &mut TokenTree,
                   dists: &mut SsmDistTable,
                   cache: &mut KvCache,
                   ancestor_rows: &mut HashMap<usize, Vec<usize>>,
                   path_prob: &HashMap<usize, f32>,
                   heap: &mut BinaryHeap<Candidate>| {
        let token = tree.token(u);
        let pos = root_pos + tree.depth(u);
        let row = cache.len();
        let rows = match tree.parent(u) {
            Some(p) => {
                let mut r = match ancestor_rows.get(&p.index()) {
                    Some(r) => r.clone(),
                    // Best-first expansion only materializes children of
                    // already-processed nodes.
                    None => unreachable!("parent rows recorded before child expands"),
                };
                r.push(row);
                r
            }
            None => vec![row],
        };
        ancestor_rows.insert(u.index(), rows);
        let visible = |_i: usize, j: usize| -> bool {
            j < prefix
                || ancestor_rows
                    .get(&u.index())
                    .is_some_and(|rows| rows.contains(&j))
        };
        let logits = ssm.forward_rows(&[token], &[pos], cache, Visibility::Custom(&visible));
        let q = sampler::probs_from_logits(logits.row(0), &DecodeMode::stochastic());
        let parent_prob = path_prob.get(&u.index()).copied().unwrap_or(1.0);
        if tree.depth(u) < config.max_depth {
            for (tok, p) in specinfer_tensor::ops::topk(&q, config.max_children) {
                let score = parent_prob * p;
                if score >= config.prob_threshold && p > 0.0 {
                    heap.push(Candidate {
                        score,
                        parent: u,
                        token: tok as TokenId,
                        prob: p,
                        depth: tree.depth(u) + 1,
                    });
                }
            }
        }
        dists.insert(u, ssm_id, q);
    };

    path_prob.insert(TokenTree::ROOT.index(), 1.0);
    process(
        TokenTree::ROOT,
        &mut tree,
        &mut dists,
        cache,
        &mut ancestor_rows,
        &path_prob,
        &mut heap,
    );

    while tree.speculated_len() < config.max_nodes {
        let Some(c) = heap.pop() else { break };
        debug_assert!(c.depth <= config.max_depth);
        let node = tree.add_child(c.parent, c.token, ssm_id, c.prob);
        path_prob.insert(node.index(), c.score);
        process(
            node,
            &mut tree,
            &mut dists,
            cache,
            &mut ancestor_rows,
            &path_prob,
            &mut heap,
        );
    }

    cache.truncate(prefix);
    Speculation { tree, dists }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specinfer_model::ModelConfig;

    fn ssm() -> Transformer {
        Transformer::from_seed(ModelConfig::smoke(), 4)
    }

    fn spec(config: &DynamicExpansionConfig) -> Speculation {
        let m = ssm();
        let mut cache = m.new_cache();
        let _ = m.prefill(&[1, 2, 3], &mut cache);
        let out = speculate_dynamic(&m, &mut cache, 5, config, 0);
        assert_eq!(cache.len(), 3, "cache must be restored");
        out
    }

    #[test]
    fn respects_node_budget_and_depth() {
        let cfg = DynamicExpansionConfig {
            max_nodes: 12,
            max_depth: 4,
            ..Default::default()
        };
        let s = spec(&cfg);
        assert!(s.tree.speculated_len() <= 12);
        assert!(s.tree.max_depth() <= 4);
        assert!(s.tree.speculated_len() > 0, "budget should be used");
    }

    #[test]
    fn expands_highest_probability_first() {
        let cfg = DynamicExpansionConfig {
            max_nodes: 1,
            max_depth: 4,
            prob_threshold: 0.0,
            max_children: 4,
        };
        let s = spec(&cfg);
        // With budget 1, the single speculated node must be the SSM's
        // top-1 continuation of the root.
        let q = s.dists.get(TokenTree::ROOT, 0).unwrap();
        let child = s.tree.children(TokenTree::ROOT)[0];
        let best = specinfer_tensor::ops::topk(q, 1)[0].0 as TokenId;
        assert_eq!(s.tree.token(child), best);
    }

    #[test]
    fn threshold_prunes_low_probability_paths() {
        let strict = DynamicExpansionConfig {
            max_nodes: 64,
            max_depth: 8,
            prob_threshold: 0.5,
            max_children: 4,
        };
        let loose = DynamicExpansionConfig {
            prob_threshold: 0.0,
            ..strict.clone()
        };
        assert!(spec(&strict).tree.speculated_len() <= spec(&loose).tree.speculated_len());
    }

    #[test]
    fn every_expanded_node_has_a_distribution() {
        let cfg = DynamicExpansionConfig {
            max_nodes: 10,
            ..Default::default()
        };
        let s = spec(&cfg);
        for u in s.tree.node_ids() {
            assert!(
                s.dists.get(u, 0).is_some(),
                "node {u:?} missing distribution"
            );
        }
    }

    #[test]
    fn node_probs_match_parent_distributions() {
        let cfg = DynamicExpansionConfig {
            max_nodes: 10,
            ..Default::default()
        };
        let s = spec(&cfg);
        for u in s.tree.node_ids() {
            if let Some(p) = s.tree.parent(u) {
                let q = s.dists.get(p, 0).unwrap();
                assert!((q[s.tree.token(u) as usize] - s.tree.ssm_prob(u)).abs() < 1e-6);
            }
        }
    }
}
