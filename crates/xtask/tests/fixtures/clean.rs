// Clean fixture: documented unsafe, typed errors, no clock reads, no
// thread creation. Must produce zero findings even under --strict.

#[derive(Debug)]
pub enum HeadError {
    Empty,
}

pub fn head(v: &[u8]) -> Result<u8, HeadError> {
    if v.is_empty() {
        return Err(HeadError::Empty);
    }
    // SAFETY: emptiness was rejected above, so index 0 is in bounds and
    // the pointer is valid for a one-byte read.
    Ok(unsafe { *v.as_ptr() })
}

pub fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out
}
