// Known-bad fixture: a serving entry blocks on a caller-supplied channel
// with no deadline and no bounded-capacity proof. Must trigger
// `unbounded_wait` (exactly one finding, the `recv()`) and nothing else.

pub fn submit_with_deadline(ch: &Receiver<u32>) -> Option<u32> {
    match ch.recv() {
        Ok(v) => Some(v),
        Err(_) => None,
    }
}
