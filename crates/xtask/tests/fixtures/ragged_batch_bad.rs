// Known-bad fixture: a ragged batched-verification loop that retires a
// finished request but never re-packs the block-diagonal visibility
// mask, then reads the stale row back by index on the next iteration.
// The slice index and the `.unwrap()` are both panics reachable from
// the `step_batch` serving entry: `no_unwrap` flags the unwrap
// lexically, and `panic_reachability` walks the call graph to both
// sites — the ragged contract is that the mask is rebuilt from the
// currently-live set every iteration, never patched in place.

pub fn step_batch(mask: &mut Vec<Vec<f32>>, live: &mut Vec<usize>) -> f32 {
    retire_finished(live);
    stale_row_weight(mask, live)
}

fn retire_finished(live: &mut Vec<usize>) {
    // Drops the finished request from the live set without shrinking
    // the mask it owned a row of.
    live.pop();
}

fn stale_row_weight(mask: &[Vec<f32>], live: &[usize]) -> f32 {
    // Indexes the mask by the *pre-retirement* batch size: one row past
    // the live set once a request has retired mid-flight.
    let row = &mask[live.len() + 1];
    *row.last().unwrap()
}
