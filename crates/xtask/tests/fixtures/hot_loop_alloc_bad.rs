//! Known-bad fixture: allocations on the allocation-free decode path —
//! a `vec!` directly inside `decode_one`'s loop, and a `Vec::new` in a
//! helper that the loop calls every iteration. The `hot_loop_alloc`
//! rule must flag both (and not the setup allocation before the loop).

pub fn decode_one(n: usize) -> usize {
    let mut acc = Vec::with_capacity(n).len();
    for i in 0..n {
        let tmp = vec![0u8; 4];
        acc = acc.max(tmp.len()).max(helper(i));
    }
    acc
}

fn helper(i: usize) -> usize {
    let scratch: Vec<usize> = Vec::new();
    scratch.len().max(i)
}
