// Clean-by-design fixture for `shared_state_race`: the owner mutates
// `job` and then moves it through the channel; the receiving task only
// touches it after `recv()` returns. The send→recv pairing is a
// happens-before edge, so the mutation and the consumption never
// overlap — the rule must stay silent here.

pub fn handoff(pool: &Pool, tx: Sender<Job>, rx: Receiver<Job>) {
    let mut job = Job::default();
    job.steps += 1;
    pool.spawn(move || {
        if let Ok(got) = rx.recv() {
            run(got);
        }
    });
    let _ = tx.send(job);
}
