// Known-bad fixture: panic-prone calls in non-test code. Must trigger
// exactly the `no_unwrap` rule — three findings (unwrap, expect, panic!).

pub fn decode(v: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = v.unwrap();
    let b = r.expect("decode failed");
    if a.checked_add(b).is_none() {
        panic!("overflowing decode");
    }
    a + b
}
