// Known-bad fixture: a batched-verification surface that both panics on
// the hot path and spawns its own threads. Must trigger `no_unwrap` (one
// finding, the `unwrap()`) and `thread_confinement` (one finding, the
// `thread::scope`) — batching earns its speedup from blocked kernels,
// never from ad-hoc threads inside the verifier.

pub fn step_batch(logits: Vec<Option<Vec<f32>>>) -> Vec<f32> {
    std::thread::scope(|scope| {
        let stacked = scope.spawn(move || {
            logits
                .into_iter()
                .flatten()
                .flatten()
                .collect::<Vec<f32>>()
        });
        stacked.join().unwrap()
    })
}
