// Known-bad fixture: an adaptive speculation controller that keys its
// rung and probe decisions off wall-clock time and unseeded randomness.
// Replays of the same request stream would pick different draft shapes,
// so batched-vs-serial equivalence (and every bitwise gate built on it)
// would flake. Must trigger exactly the `determinism` rule — three
// findings (Instant::now, SystemTime, thread_rng).

pub struct BadController {
    rung: usize,
    last_probe_ms: u128,
}

impl BadController {
    /// Picks the next draft shape. Deterministic controllers decide from
    /// acceptance EWMAs alone; this one consults the host's clocks.
    pub fn decide(&mut self) -> usize {
        let started = std::time::Instant::now();
        let now_ms = match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            Ok(d) => d.as_millis(),
            Err(_) => 0,
        };
        if now_ms.saturating_sub(self.last_probe_ms) > 250 {
            self.last_probe_ms = now_ms;
            // Probe a random rung: un-replayable shape switching.
            self.rung = rand::thread_rng().gen_range(0..6);
        }
        let _budget_spent = started.elapsed();
        self.rung
    }
}
