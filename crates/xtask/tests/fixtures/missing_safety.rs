// Known-bad fixture: an `unsafe` block with no `// SAFETY:` comment.
// Must trigger exactly the `safety_comment` rule, once.

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    unsafe { *v.as_ptr() }
}
