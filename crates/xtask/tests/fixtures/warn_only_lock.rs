// Warn-severity fixture: a serving entry takes a lock with no deadline.
// `unbounded_wait` reports this at `warn` severity — the lock graph is
// proven acyclic by `lock_order`, so the wait is bounded by critical
// sections — and warn-only runs must exit 0.

pub fn submit_with_deadline(&self) -> u64 {
    let guard = self.state.lock();
    *guard
}
