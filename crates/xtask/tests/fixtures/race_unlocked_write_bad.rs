// Known-bad fixture: two pool tasks share `stats` with no lock on
// either side — the increment and the read interleave freely. Must
// trigger `shared_state_race` (exactly one finding, the write/read
// pair on `stats`) and nothing else. The racy interleaving is proved
// executable by `race_unlocked_write_witness` in
// shims/loom/tests/race_witness.rs.

pub fn accumulate(pool: &Pool, stats: &mut Stats) {
    pool.spawn(|| {
        stats.total += 1;
    });
    pool.spawn(|| {
        observe(stats.total);
    });
}
