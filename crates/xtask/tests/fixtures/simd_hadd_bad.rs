//! Known-bad fixture: SIMD reductions folded with horizontal-add
//! intrinsics. `hadd`/`addv` bury the lane association order inside the
//! ISA, so the `float_reduction_order` rule must flag every call here —
//! kernels spill the lanes and fold them with an explicit pairwise tree
//! instead. The integer helper at the end stays clean.

pub fn dot_tail_avx(acc: f32) -> f32 {
    let folded = _mm256_hadd_ps(acc, acc);
    _mm_hadd_ps(folded, folded)
}

pub fn dot_tail_neon(acc: f32) -> f32 {
    core::arch::aarch64::vaddvq_f32(acc)
}

pub fn int_tail(acc: u32) -> u32 {
    acc
}
