//! Known-bad fixture: a serving entry reaches a function that indexes a
//! slice with an unchecked subscript two calls down. The
//! `panic_reachability` rule must flag `leaf` and carry the full call
//! path `daemon_loop -> mid -> leaf` as evidence.

pub fn daemon_loop(xs: &[u32]) -> u32 {
    mid(xs)
}

fn mid(xs: &[u32]) -> u32 {
    leaf(xs, 1)
}

fn leaf(xs: &[u32], i: usize) -> u32 {
    xs[i]
}
