// Known-bad fixture: a request-supplied size flows straight into an
// allocation with no clamp and no dominating bounds check. Must trigger
// `untrusted_size_flow` (exactly one finding, the `with_capacity`) and
// nothing else.

pub fn admit(request: &Request) -> Vec<u32> {
    let rows = request.max_new_tokens;
    Vec::with_capacity(rows)
}
