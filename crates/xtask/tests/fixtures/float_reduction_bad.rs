//! Known-bad fixture: float reductions whose association order is
//! hidden or reversed — iterator `.sum()`, iterator `.fold(…)`, and a
//! `.rev()` loop feeding `+=`. The `float_reduction_order` rule must
//! flag all three; the integer reduction at the end stays clean.

pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub fn total(a: &[f32]) -> f32 {
    a.iter().fold(0.0, |acc, x| acc + x)
}

pub fn reversed(a: &[f32]) -> f32 {
    let mut acc = 0.0;
    for x in a.iter().rev() {
        acc += x;
    }
    acc
}

pub fn int_count(a: &[u64]) -> u64 {
    let mut acc = 0;
    for x in a {
        acc += x;
    }
    acc
}
