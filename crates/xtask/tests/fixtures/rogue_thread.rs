// Known-bad fixture: thread creation outside the sanctioned pool and
// daemon modules. Must trigger exactly the `thread_confinement` rule —
// two findings (thread::spawn, thread::scope).

pub fn fire_and_forget(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}

pub fn sum_in_parallel(xs: &[u64]) -> u64 {
    let mid = xs.len() / 2;
    std::thread::scope(|scope| {
        let left = scope.spawn(|| xs[..mid].iter().sum::<u64>());
        let right: u64 = xs[mid..].iter().sum();
        match left.join() {
            Ok(l) => l + right,
            Err(_) => right,
        }
    })
}
