// Known-bad fixture: wall-clock reads and unseeded randomness in
// library code. Must trigger exactly the `determinism` rule — three
// findings (Instant::now, SystemTime, thread_rng).

pub fn stamp() -> u128 {
    let _started = std::time::Instant::now();
    let epoch_ms = match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_millis(),
        Err(_) => 0,
    };
    let jitter = rand::thread_rng().gen_range(0..7) as u128;
    epoch_ms + jitter
}
