// Known-bad fixture: unguarded multiply-add index arithmetic — the
// classic flattened-2D hot-path pattern where `row * stride` can wrap
// before the bounds check the indexing itself performs. Must trigger
// `index_arith_overflow` (exactly one finding) and nothing else.

pub fn scatter(data: &mut [f32], stride: usize, row: usize, col: usize) {
    data[row * stride + col] = 1.0;
}
