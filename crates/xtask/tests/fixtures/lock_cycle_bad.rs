//! Known-bad fixture: classic ABBA deadlock shape — `ab` acquires `a`
//! then `b`, `ba` acquires `b` then `a`. The `lock_order` rule must
//! report exactly one canonical cycle between `Pair.a` and `Pair.b`.

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let x = self.a.lock();
        let y = self.b.lock();
        *x + *y
    }

    pub fn ba(&self) -> u32 {
        let y = self.b.lock();
        let x = self.a.lock();
        *x + *y
    }
}
