// Known-bad fixture: both tasks take the same mutex, but the first
// drops its guard *before* writing `shared.hits`, so the write happens
// with an empty lockset — the lock protects nothing. Must trigger
// `shared_state_race` (exactly one finding, the write/write pair) and
// nothing else. The racy interleaving is proved executable by
// `race_guard_dropped_early_witness` in
// shims/loom/tests/race_witness.rs.

pub fn merge(pool: &Pool, m: &Mutex<Counters>, shared: &mut Counters) {
    pool.spawn(|| {
        let g = m.lock();
        drop(g);
        shared.hits += 1;
    });
    pool.spawn(|| {
        let g = m.lock();
        shared.hits += 1;
        drop(g);
    });
}
