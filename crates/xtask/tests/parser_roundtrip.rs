//! Parser trust battery: the semantic rules are only as strong as the
//! in-repo parser under them, so this suite pins three properties.
//!
//! 1. Every workspace source file lexes and parses with **zero**
//!    diagnostics — a file the parser loses sync on is a file the call
//!    graph silently under-covers.
//! 2. The lexer round-trips: printing a token stream and re-lexing the
//!    print yields the identical `(kind, text)` stream, on every
//!    workspace file.
//! 3. The same round-trip holds on proptest-generated token soup, and
//!    the parser terminates without panicking on it (diagnostics are
//!    allowed — soup is rarely well-formed; crashing is not).

use proptest::prelude::*;
use specinfer_xtask::parse::{lex, parse_file, Tok, TokKind};
use specinfer_xtask::scan::scan_source;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("xtask lives two levels below the workspace root")
}

/// Every `.rs` file under `crates/`, as (workspace-relative path, text).
/// Fixtures and build output are skipped, mirroring the workspace scan.
fn workspace_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    let mut out = Vec::new();
    walk(&root, &root.join("crates"), &mut out);
    assert!(
        out.len() > 20,
        "workspace walk looks broken: only {} files",
        out.len()
    );
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("readable dir").flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).expect("readable source");
            out.push((rel, text));
        }
    }
}

/// Prints a token stream: tokens separated by spaces, original line
/// structure preserved (so line-oriented scanning stays comparable).
fn print_toks(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut line = 1;
    for t in toks {
        while line < t.line {
            out.push('\n');
            line += 1;
        }
        out.push(' ');
        out.push_str(&t.text);
    }
    out
}

fn stream(toks: &[Tok]) -> Vec<(TokKind, &str)> {
    toks.iter().map(|t| (t.kind, t.text.as_str())).collect()
}

#[test]
fn every_workspace_file_parses_without_diagnostics() {
    for (path, text) in workspace_sources() {
        let parsed = parse_file(&scan_source(&path, &text, false));
        assert!(
            parsed.errors.is_empty(),
            "{path}: parser lost sync: {:?}",
            parsed.errors
        );
    }
}

#[test]
fn lexer_round_trips_every_workspace_file() {
    for (path, text) in workspace_sources() {
        let toks = lex(&scan_source(&path, &text, false));
        let printed = print_toks(&toks);
        let again = lex(&scan_source(&path, &printed, false));
        assert_eq!(
            stream(&toks),
            stream(&again),
            "{path}: lexer round-trip diverged"
        );
    }
}

/// The closure battery: the race detector leans on `Fact::Closure`
/// (capture lists, by-move flags, spawn attribution), so the shapes it
/// depends on are pinned here against parser drift.
mod closures {
    use specinfer_xtask::parse::{parse_file, Fact, ParsedFile};
    use specinfer_xtask::scan::scan_source;

    fn parse(src: &str) -> ParsedFile {
        let p = parse_file(&scan_source("crates/x/src/a.rs", src, true));
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        p
    }

    fn closures(p: &ParsedFile) -> Vec<&Fact> {
        p.fns
            .iter()
            .flat_map(|f| &f.facts)
            .filter(|f| matches!(f, Fact::Closure { .. }))
            .collect()
    }

    #[test]
    fn move_capture_in_a_spawn_arg_is_attributed() {
        let p = parse(
            "fn f(pool: &Pool, stats: &mut Stats) {\n    pool.spawn(move || {\n        stats.total += 1;\n    });\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:#?}");
        let Fact::Closure {
            by_move,
            captures,
            enclosing_call,
            enclosing_recv,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert!(by_move);
        assert_eq!(captures, &["stats"]);
        assert_eq!(enclosing_call.as_deref(), Some("spawn"));
        assert_eq!(enclosing_recv, "pool");
    }

    #[test]
    fn ref_capture_keeps_by_move_false_and_params_out_of_captures() {
        let p = parse(
            "fn f(xs: &[u32], bias: u32) -> Vec<u32> {\n    xs.iter().map(|x| x + bias).collect()\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:#?}");
        let Fact::Closure {
            by_move,
            params,
            captures,
            enclosing_call,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert!(!by_move);
        assert_eq!(params, &["x"]);
        assert_eq!(captures, &["bias"], "the param must not count as a capture");
        assert_eq!(enclosing_call.as_deref(), Some("map"));
    }

    #[test]
    fn nested_closures_keep_separate_capture_sets() {
        let p = parse(
            "fn f(rows: &[Vec<u32>], k: u32) -> Vec<u32> {\n    rows.iter()\n        .map(|row| row.iter().filter(|v| **v > k).count() as u32)\n        .collect()\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 2, "{cl:#?}");
        // Outer `|row|` captures `k` (used by the inner closure it
        // absorbs); inner `|v|` captures `k` only, not its own param
        // nor the outer's.
        for c in &cl {
            let Fact::Closure { captures, .. } = c else {
                unreachable!()
            };
            assert_eq!(captures, &["k"], "{c:#?}");
        }
    }

    #[test]
    fn multi_line_spawn_closure_records_its_line_span() {
        let p = parse(
            "fn f(pool: &Pool, acc: &mut Vec<u32>) {\n    pool.spawn(move || {\n        acc.push(1);\n        acc.push(2);\n    });\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:#?}");
        let Fact::Closure {
            line,
            end_line,
            body,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert_eq!(*line, 2);
        // `end_line` is the line of the last *body* token (the second
        // `push`), not of the closing delimiter.
        assert_eq!(*end_line, 4);
        assert!(
            body.iter().any(|t| t.text == "push"),
            "body tokens retained: {body:#?}"
        );
    }

    #[test]
    fn closure_spawned_inside_a_loop_is_marked_in_loop() {
        let p = parse(
            "fn f(pool: &Pool, stats: &mut Stats) {\n    for _i in 0..4 {\n        pool.spawn(|| {\n            stats.total += 1;\n        });\n    }\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:#?}");
        let Fact::Closure { in_loop, .. } = cl[0] else {
            unreachable!()
        };
        assert!(in_loop);
    }
}

/// Vocabulary for token soup: keywords, idents, literals, operators and
/// (frequently unbalanced) delimiters that exercise every lexer arm.
const VOCAB: &[&str] = &[
    "fn", "struct", "impl", "trait", "let", "mut", "pub", "use", "mod", "for", "in", "while",
    "loop", "if", "else", "match", "return", "unsafe", "self", "Self", "x", "ys", "do_it", "Vec",
    "0", "42", "1.5", "0.0f32", "1e-3", "0xff", "\"s\"", "''", "'a", "{", "}", "(", ")", "[", "]",
    "<", ">", ";", ",", ".", "::", "->", "=>", "&", "*", "+", "+=", "==", "!", "#", "|", "..",
    "..=", "=", "||", "move",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parser_terminates_and_lexer_round_trips_on_token_soup(
        picks in prop::collection::vec(0usize..60, 0..160),
        breaks in prop::collection::vec(0u8..8, 0..160),
    ) {
        prop_assert_eq!(VOCAB.len(), 60, "keep the pick range in sync");
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(VOCAB[p]);
            // Sprinkle newlines so multi-line constructs appear.
            if breaks.get(i).copied().unwrap_or(0) == 0 {
                src.push('\n');
            } else {
                src.push(' ');
            }
        }
        // Termination + no panic; diagnostics are fine on soup.
        let parsed = parse_file(&scan_source("soup.rs", &src, false));
        let _ = parsed.fns.len();

        let toks = lex(&scan_source("soup.rs", &src, false));
        let printed = print_toks(&toks);
        let again = lex(&scan_source("soup.rs", &printed, false));
        prop_assert_eq!(stream(&toks), stream(&again), "soup:\n{}", src);
    }
}
