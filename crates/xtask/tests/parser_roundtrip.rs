//! Parser trust battery: the semantic rules are only as strong as the
//! in-repo parser under them, so this suite pins three properties.
//!
//! 1. Every workspace source file lexes and parses with **zero**
//!    diagnostics — a file the parser loses sync on is a file the call
//!    graph silently under-covers.
//! 2. The lexer round-trips: printing a token stream and re-lexing the
//!    print yields the identical `(kind, text)` stream, on every
//!    workspace file.
//! 3. The same round-trip holds on proptest-generated token soup, and
//!    the parser terminates without panicking on it (diagnostics are
//!    allowed — soup is rarely well-formed; crashing is not).

use proptest::prelude::*;
use specinfer_xtask::parse::{lex, parse_file, Tok, TokKind};
use specinfer_xtask::scan::scan_source;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("xtask lives two levels below the workspace root")
}

/// Every `.rs` file under `crates/`, as (workspace-relative path, text).
/// Fixtures and build output are skipped, mirroring the workspace scan.
fn workspace_sources() -> Vec<(String, String)> {
    let root = workspace_root();
    let mut out = Vec::new();
    walk(&root, &root.join("crates"), &mut out);
    assert!(
        out.len() > 20,
        "workspace walk looks broken: only {} files",
        out.len()
    );
    out
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) {
    for entry in std::fs::read_dir(dir).expect("readable dir").flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).expect("readable source");
            out.push((rel, text));
        }
    }
}

/// Prints a token stream: tokens separated by spaces, original line
/// structure preserved (so line-oriented scanning stays comparable).
fn print_toks(toks: &[Tok]) -> String {
    let mut out = String::new();
    let mut line = 1;
    for t in toks {
        while line < t.line {
            out.push('\n');
            line += 1;
        }
        out.push(' ');
        out.push_str(&t.text);
    }
    out
}

fn stream(toks: &[Tok]) -> Vec<(TokKind, &str)> {
    toks.iter().map(|t| (t.kind, t.text.as_str())).collect()
}

#[test]
fn every_workspace_file_parses_without_diagnostics() {
    for (path, text) in workspace_sources() {
        let parsed = parse_file(&scan_source(&path, &text, false));
        assert!(
            parsed.errors.is_empty(),
            "{path}: parser lost sync: {:?}",
            parsed.errors
        );
    }
}

#[test]
fn lexer_round_trips_every_workspace_file() {
    for (path, text) in workspace_sources() {
        let toks = lex(&scan_source(&path, &text, false));
        let printed = print_toks(&toks);
        let again = lex(&scan_source(&path, &printed, false));
        assert_eq!(
            stream(&toks),
            stream(&again),
            "{path}: lexer round-trip diverged"
        );
    }
}

/// Vocabulary for token soup: keywords, idents, literals, operators and
/// (frequently unbalanced) delimiters that exercise every lexer arm.
const VOCAB: &[&str] = &[
    "fn", "struct", "impl", "trait", "let", "mut", "pub", "use", "mod", "for", "in", "while",
    "loop", "if", "else", "match", "return", "unsafe", "self", "Self", "x", "ys", "do_it", "Vec",
    "0", "42", "1.5", "0.0f32", "1e-3", "0xff", "\"s\"", "''", "'a", "{", "}", "(", ")", "[", "]",
    "<", ">", ";", ",", ".", "::", "->", "=>", "&", "*", "+", "+=", "==", "!", "#", "|", "..",
    "..=", "=",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parser_terminates_and_lexer_round_trips_on_token_soup(
        picks in prop::collection::vec(0usize..58, 0..160),
        breaks in prop::collection::vec(0u8..8, 0..160),
    ) {
        prop_assert_eq!(VOCAB.len(), 58, "keep the pick range in sync");
        let mut src = String::new();
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(VOCAB[p]);
            // Sprinkle newlines so multi-line constructs appear.
            if breaks.get(i).copied().unwrap_or(0) == 0 {
                src.push('\n');
            } else {
                src.push(' ');
            }
        }
        // Termination + no panic; diagnostics are fine on soup.
        let parsed = parse_file(&scan_source("soup.rs", &src, false));
        let _ = parsed.fns.len();

        let toks = lex(&scan_source("soup.rs", &src, false));
        let printed = print_toks(&toks);
        let again = lex(&scan_source("soup.rs", &printed, false));
        prop_assert_eq!(stream(&toks), stream(&again), "soup:\n{}", src);
    }
}
