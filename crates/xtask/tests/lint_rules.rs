//! Self-tests for specinfer-lint: every rule has a known-bad fixture
//! that triggers exactly that rule, a clean fixture passes all rules,
//! and the binary's exit codes match (non-zero on findings, zero clean).
//!
//! Fixtures live in `tests/fixtures/`, which the workspace scan skips —
//! they are bad *by design* and must only be seen via `--strict`.

use specinfer_xtask::{lint_files_strict, lint_workspace};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("xtask lives two levels below the workspace root")
}

/// Asserts the fixture yields `count` findings, all of rule `rule`.
fn assert_only_rule(name: &str, rule: &str, count: usize) {
    let findings = lint_files_strict(&[fixture(name)]);
    assert_eq!(
        findings.len(),
        count,
        "{name}: expected {count} findings, got {findings:#?}"
    );
    for f in &findings {
        assert_eq!(
            f.rule, rule,
            "{name}: expected only `{rule}` findings, got {f}"
        );
        assert!(f.line > 0, "{name}: findings carry a 1-based line: {f}");
    }
}

#[test]
fn missing_safety_fixture_triggers_only_safety_comment() {
    assert_only_rule("missing_safety.rs", "safety_comment", 1);
}

#[test]
fn hot_unwrap_fixture_triggers_only_no_unwrap() {
    // One finding each for `.unwrap()`, `.expect(` and `panic!`.
    assert_only_rule("hot_unwrap.rs", "no_unwrap", 3);
}

#[test]
fn wall_clock_fixture_triggers_only_determinism() {
    // One finding each for `Instant::now`, `SystemTime`, `thread_rng`.
    assert_only_rule("wall_clock.rs", "determinism", 3);
}

#[test]
fn adaptive_spec_fixture_triggers_only_determinism() {
    // A speculation controller deciding rungs off the host's clocks and
    // unseeded RNG: one finding each for `Instant::now`, `SystemTime`,
    // `thread_rng`. Shape decisions must replay bit-identically or the
    // batched-vs-serial equivalence gates flake.
    assert_only_rule("adaptive_spec_bad.rs", "determinism", 3);
}

#[test]
fn rogue_thread_fixture_triggers_only_thread_confinement() {
    // One finding each for `thread::spawn` and `thread::scope`.
    assert_only_rule("rogue_thread.rs", "thread_confinement", 2);
}

#[test]
fn batched_verify_fixture_triggers_unwrap_and_thread_confinement() {
    // The rules the batched-verification surfaces must obey: no panics
    // under the stacked forward (lexically and via the call graph —
    // the fixture's `step_batch` is a serving entry, so its `.unwrap()`
    // also trips panic_reachability), no thread creation outside the
    // sanctioned pool modules.
    let findings = lint_files_strict(&[fixture("batched_verify_bad.rs")]);
    let mut rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        ["no_unwrap", "panic_reachability", "thread_confinement"],
        "{findings:#?}"
    );
}

#[test]
fn ragged_batch_fixture_triggers_unwrap_and_panic_reachability() {
    // The ragged-batching contract: the visibility mask is re-packed
    // from the currently-live set every iteration, never indexed by a
    // stale pre-retirement batch size. The fixture's stale-row read
    // carries an `.unwrap()` (lexical `no_unwrap`) and a slice index —
    // both reachable from the `step_batch` serving entry, folded into
    // one `panic_reachability` finding on the offending function.
    let findings = lint_files_strict(&[fixture("ragged_batch_bad.rs")]);
    let mut rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(rules, ["no_unwrap", "panic_reachability"], "{findings:#?}");
    let reach = findings
        .iter()
        .find(|f| f.rule == "panic_reachability")
        .expect("checked above");
    assert_eq!(
        reach.call_path,
        vec!["step_batch", "stale_row_weight"],
        "evidence must walk from the serving entry to the stale read"
    );
}

#[test]
fn panic_reach_fixture_triggers_only_panic_reachability() {
    // `leaf` indexes a slice and is reachable from the `daemon_loop`
    // entry; the callers themselves are clean.
    assert_only_rule("panic_reach_bad.rs", "panic_reachability", 1);
}

#[test]
fn panic_reach_fixture_reports_the_full_call_path() {
    let findings = lint_files_strict(&[fixture("panic_reach_bad.rs")]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(
        findings[0].call_path,
        vec!["daemon_loop", "mid", "leaf"],
        "evidence must spell out the whole entry-to-panic chain"
    );
    assert!(
        findings[0].message.contains("daemon_loop"),
        "{}",
        findings[0].message
    );
}

#[test]
fn lock_cycle_fixture_triggers_only_lock_order() {
    // `ab` takes a→b, `ba` takes b→a: one canonical ABBA cycle. The
    // cycle is over may-alias lock names, so it reports at warn
    // severity — an eye on the PR, not a red build.
    assert_only_rule("lock_cycle_bad.rs", "lock_order", 1);
    let findings = lint_files_strict(&[fixture("lock_cycle_bad.rs")]);
    assert_eq!(
        findings[0].severity,
        specinfer_xtask::rules::Severity::Warn,
        "{}",
        findings[0]
    );
}

#[test]
fn race_unlocked_write_fixture_triggers_only_shared_state_race() {
    // Two pool tasks touch `stats` with empty locksets: one write/read
    // pair, no happens-before edge.
    assert_only_rule("race_unlocked_write_bad.rs", "shared_state_race", 1);
    let findings = lint_files_strict(&[fixture("race_unlocked_write_bad.rs")]);
    assert!(
        findings[0].message.contains("locks: {}"),
        "finding spells out the empty locksets: {}",
        findings[0].message
    );
}

#[test]
fn race_guard_dropped_early_fixture_triggers_only_shared_state_race() {
    // Both tasks take `m`, but one drops the guard before its write —
    // the locksets at the two writes share nothing.
    assert_only_rule("race_guard_dropped_early_bad.rs", "shared_state_race", 1);
    let findings = lint_files_strict(&[fixture("race_guard_dropped_early_bad.rs")]);
    assert!(
        findings[0].message.contains("locks: {m}"),
        "finding names the lock the other side still holds: {}",
        findings[0].message
    );
}

#[test]
fn race_channel_fixture_is_clean() {
    // The send→recv handoff is a happens-before edge: the owner's
    // mutation of `job` is ordered before the task's consumption, so
    // `shared_state_race` must stay silent.
    let findings = lint_files_strict(&[fixture("race_channel_ok.rs")]);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn race_fixture_witnesses_are_checked_in_and_cited() {
    // Each bad race fixture cites a loom harness proving its
    // interleaving is executable; the harness must exist in the
    // checked-in witness file (whose content `race::tests::
    // checked_in_witnesses_match_generator` pins to the generator).
    let witness_path = workspace_root().join("shims/loom/tests/race_witness.rs");
    let witnesses = std::fs::read_to_string(witness_path).expect("witness file checked in");
    for (fixture_name, witness_fn) in [
        ("race_unlocked_write_bad.rs", "race_unlocked_write_witness"),
        (
            "race_guard_dropped_early_bad.rs",
            "race_guard_dropped_early_witness",
        ),
    ] {
        let src = std::fs::read_to_string(fixture(fixture_name)).expect("fixture readable");
        assert!(
            src.contains(witness_fn),
            "{fixture_name} must cite its loom witness {witness_fn}"
        );
        assert!(
            witnesses.contains(&format!("fn {witness_fn}()")),
            "witness file must define {witness_fn}"
        );
    }
}

#[test]
fn hot_loop_alloc_fixture_triggers_only_hot_loop_alloc() {
    // `vec!` inside `decode_one`'s loop + `Vec::new` in the helper the
    // loop calls; the pre-loop `with_capacity` stays clean.
    assert_only_rule("hot_loop_alloc_bad.rs", "hot_loop_alloc", 2);
}

#[test]
fn float_reduction_fixture_triggers_only_float_reduction_order() {
    // Iterator `.sum()`, iterator `.fold(…)`, and a `.rev()` loop
    // feeding `+=`; the integer loop stays clean.
    assert_only_rule("float_reduction_bad.rs", "float_reduction_order", 3);
}

#[test]
fn simd_hadd_fixture_triggers_only_float_reduction_order() {
    // Two x86 `hadd` calls plus one NEON `vaddvq_f32` (fully qualified);
    // the integer helper stays clean. Horizontal-add intrinsics hide the
    // lane association order the SIMD determinism contract depends on.
    assert_only_rule("simd_hadd_bad.rs", "float_reduction_order", 3);
}

#[test]
fn bad_shim_fixture_triggers_only_shim_hygiene() {
    // Bare registry string, git dep, version table, path escape — and
    // the [package] version must not be flagged.
    assert_only_rule("bad_shim/Cargo.toml", "shim_hygiene", 4);
}

#[test]
fn untrusted_size_fixture_triggers_only_untrusted_size_flow() {
    // `request.max_new_tokens` → `rows` → `Vec::with_capacity(rows)`
    // with no clamp and no dominating bounds check.
    assert_only_rule("untrusted_size_bad.rs", "untrusted_size_flow", 1);
}

#[test]
fn unbounded_wait_fixture_triggers_only_unbounded_wait() {
    // A serving entry blocking on `ch.recv()` where `ch` is a parameter:
    // no deadline dominates it and no local `bounded(…)` proof exists.
    assert_only_rule("unbounded_wait_bad.rs", "unbounded_wait", 1);
}

#[test]
fn index_arith_fixture_triggers_only_index_arith_overflow() {
    // `data[row * stride + col]` with no assert guard naming an operand.
    assert_only_rule("index_arith_bad.rs", "index_arith_overflow", 1);
}

#[test]
fn warn_only_fixture_reports_warn_severity() {
    use specinfer_xtask::rules::Severity;
    let findings = lint_files_strict(&[fixture("warn_only_lock.rs")]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].rule, "unbounded_wait");
    assert_eq!(findings[0].severity, Severity::Warn);
    assert!(
        findings[0].to_string().contains("[unbounded_wait:warn]"),
        "text mode spells out warn severity: {}",
        findings[0]
    );
}

#[test]
fn clean_fixture_passes_every_rule_in_strict_mode() {
    let findings = lint_files_strict(&[fixture("clean.rs")]);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn serving_and_spec_lock_graph_is_cycle_free() {
    // Acceptance criterion for the concurrency layer: the lock-ordering
    // graph over the serving and spec crates must be acyclic *before*
    // the allowlist is applied — an audited exception must never be the
    // only thing standing between the daemon and an ABBA deadlock.
    use specinfer_xtask::{parse, scan, semantic};
    let root = workspace_root();
    let mut parsed = Vec::new();
    for krate in ["serving", "spec"] {
        let dir = root.join("crates").join(krate).join("src");
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d).expect("readable crate dir").flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let rel = p
                        .strip_prefix(&root)
                        .expect("under root")
                        .to_string_lossy()
                        .replace('\\', "/");
                    let src = std::fs::read_to_string(&p).expect("readable source");
                    parsed.push(parse::parse_file(&scan::scan_source(&rel, &src, false)));
                }
            }
        }
    }
    assert!(
        parsed.len() > 5,
        "walk looks broken: {} files",
        parsed.len()
    );
    let mut findings = Vec::new();
    semantic::semantic_findings(&parsed, false, &mut findings);
    let cycles: Vec<_> = findings.iter().filter(|f| f.rule == "lock_order").collect();
    assert!(
        cycles.is_empty(),
        "lock-order cycle in serving/spec: {cycles:#?}"
    );
}

#[test]
fn the_workspace_itself_is_clean() {
    let findings = lint_workspace(&workspace_root());
    assert!(
        findings.is_empty(),
        "workspace lint must stay clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The binary contract: exit 1 on each bad fixture, exit 0 on the clean
/// fixture and on the whole workspace, exit 2 on usage errors.
#[test]
fn binary_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");
    for bad in [
        "missing_safety.rs",
        "hot_unwrap.rs",
        "wall_clock.rs",
        "rogue_thread.rs",
        "batched_verify_bad.rs",
        "ragged_batch_bad.rs",
        "panic_reach_bad.rs",
        "hot_loop_alloc_bad.rs",
        "float_reduction_bad.rs",
        "bad_shim/Cargo.toml",
        "untrusted_size_bad.rs",
        "unbounded_wait_bad.rs",
        "index_arith_bad.rs",
        "race_unlocked_write_bad.rs",
        "race_guard_dropped_early_bad.rs",
    ] {
        let status = Command::new(bin)
            .args(["lint", "--strict"])
            .arg(fixture(bad))
            .status()
            .expect("lint binary runs");
        assert_eq!(status.code(), Some(1), "{bad}: expected exit 1");
    }

    // Warn-only findings (lock_order) and clean fixtures exit 0.
    for ok in ["lock_cycle_bad.rs", "race_channel_ok.rs", "clean.rs"] {
        let status = Command::new(bin)
            .args(["lint", "--strict"])
            .arg(fixture(ok))
            .status()
            .expect("lint binary runs");
        assert_eq!(status.code(), Some(0), "{ok}: expected exit 0");
    }

    let workspace = Command::new(bin)
        .args(["lint", "--root"])
        .arg(workspace_root())
        .status()
        .expect("lint binary runs");
    assert_eq!(workspace.code(), Some(0), "workspace lint: expected exit 0");

    let usage = Command::new(bin)
        .arg("frobnicate")
        .status()
        .expect("lint binary runs");
    assert_eq!(usage.code(), Some(2), "unknown command: expected exit 2");
}

/// `--json` reports carry the rule/path/line/call-path fields the CI
/// annotation step consumes, and keep the text mode's exit codes.
#[test]
fn json_mode_reports_findings_and_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");

    let bad = Command::new(bin)
        .args(["lint", "--json", "--strict"])
        .arg(fixture("panic_reach_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(bad.status.code(), Some(1), "findings must still exit 1");
    let report = String::from_utf8(bad.stdout).expect("utf-8 report");
    for needle in [
        "\"rule\": \"panic_reachability\"",
        "\"line\": 14",
        "\"call_path\": [\"daemon_loop\", \"mid\", \"leaf\"]",
        "\"count\": 1",
    ] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }

    let clean = Command::new(bin)
        .args(["lint", "--json", "--strict"])
        .arg(fixture("clean.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(clean.status.code(), Some(0), "clean must exit 0");
    let report = String::from_utf8(clean.stdout).expect("utf-8 report");
    assert!(report.contains("\"count\": 0"), "{report}");
}

/// `--github` emits one workflow annotation per finding, at the kind
/// matching the finding's severity: error findings annotate `::error`
/// (and fail the job), warn findings annotate `::warning` (and don't).
#[test]
fn github_mode_emits_workflow_annotations() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");

    let out = Command::new(bin)
        .args(["lint", "--github", "--strict"])
        .arg(fixture("race_unlocked_write_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        text.lines().any(|l| l.starts_with("::error file=")
            && l.contains("title=specinfer-lint shared_state_race")),
        "{text}"
    );

    // lock_order is advisory: it must annotate as a warning, never as
    // an error that flunks an otherwise-green run.
    let out = Command::new(bin)
        .args(["lint", "--github", "--strict"])
        .arg(fixture("lock_cycle_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(out.status.code(), Some(0), "warn-only run exits 0");
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        text.lines()
            .any(|l| l.starts_with("::warning file=")
                && l.contains("title=specinfer-lint lock_order")),
        "{text}"
    );
    assert!(
        !text.contains("::error"),
        "lock_order must not annotate as an error: {text}"
    );
}

/// Warn-severity findings annotate (`::warning`), report (`"severity":
/// "warn"`), and exit 0 — only error findings fail the build.
#[test]
fn warn_only_findings_exit_zero_in_every_format() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");

    let text = Command::new(bin)
        .args(["lint", "--strict"])
        .arg(fixture("warn_only_lock.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(text.status.code(), Some(0), "warn-only text run exits 0");
    let out = String::from_utf8(text.stdout).expect("utf-8 output");
    assert!(out.contains("[unbounded_wait:warn]"), "{out}");

    let json = Command::new(bin)
        .args(["lint", "--json", "--strict"])
        .arg(fixture("warn_only_lock.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(json.status.code(), Some(0), "warn-only json run exits 0");
    let out = String::from_utf8(json.stdout).expect("utf-8 output");
    assert!(out.contains("\"severity\": \"warn\""), "{out}");

    let gh = Command::new(bin)
        .args(["lint", "--github", "--strict"])
        .arg(fixture("warn_only_lock.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(gh.status.code(), Some(0), "warn-only github run exits 0");
    let out = String::from_utf8(gh.stdout).expect("utf-8 output");
    assert!(
        out.lines().any(|l| l.starts_with("::warning file=")
            && l.contains("title=specinfer-lint unbounded_wait")),
        "{out}"
    );
}

/// Error findings carry `"severity": "error"` in the JSON report.
#[test]
fn json_mode_reports_error_severity() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");
    let out = Command::new(bin)
        .args(["lint", "--json", "--strict"])
        .arg(fixture("unbounded_wait_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let report = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(report.contains("\"severity\": \"error\""), "{report}");
    assert!(report.contains("\"rule\": \"unbounded_wait\""), "{report}");
}

/// `--rule` keeps only the named rules' findings — and with them gone,
/// the exit code reflects what is left.
#[test]
fn rule_filter_selects_a_single_rule() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");

    // batched_verify_bad.rs trips three rules; filtering to one keeps
    // exactly its finding.
    let out = Command::new(bin)
        .args(["lint", "--json", "--rule", "thread_confinement", "--strict"])
        .arg(fixture("batched_verify_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(out.status.code(), Some(1));
    let report = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(report.contains("\"count\": 1"), "{report}");
    assert!(
        report.contains("\"rule\": \"thread_confinement\""),
        "{report}"
    );
    assert!(!report.contains("no_unwrap"), "{report}");

    // Filtering to a rule the fixture does not trip leaves nothing and
    // exits 0.
    let none = Command::new(bin)
        .args(["lint", "--rule", "determinism", "--strict"])
        .arg(fixture("batched_verify_bad.rs"))
        .output()
        .expect("lint binary runs");
    assert_eq!(none.status.code(), Some(0), "filtered-out findings exit 0");

    // A missing rule name is a usage error.
    let usage = Command::new(bin)
        .args(["lint", "--rule"])
        .status()
        .expect("lint binary runs");
    assert_eq!(usage.code(), Some(2));
}

/// The on-disk fact cache (`target/xtask-cache/`, keyed by FNV-1a
/// content hash) memoizes the parse pass across invocations: a warm
/// second run must produce byte-identical output and not be slower
/// than the cold run that populated the cache. Timing is compared as
/// best-of-three on each side so a scheduler hiccup on one run cannot
/// flip the comparison.
#[test]
fn warm_fact_cache_is_byte_identical_and_no_slower() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");
    let root = workspace_root();
    let cache_dir = root.join("target").join("xtask-cache");
    let run = || {
        let started = std::time::Instant::now();
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(&root)
            .output()
            .expect("lint binary runs");
        assert_eq!(out.status.code(), Some(0));
        (started.elapsed(), out.stdout)
    };

    let mut cold = std::time::Duration::MAX;
    let mut cold_out = Vec::new();
    for _ in 0..3 {
        std::fs::remove_dir_all(&cache_dir).ok();
        let (t, out) = run();
        if t < cold {
            cold = t;
            cold_out = out;
        }
    }
    assert!(cache_dir.is_dir(), "cold run populates the cache");

    let mut warm = std::time::Duration::MAX;
    let mut warm_out = Vec::new();
    for _ in 0..3 {
        let (t, out) = run();
        if t < warm {
            warm = t;
            warm_out = out;
        }
    }
    assert_eq!(
        String::from_utf8_lossy(&cold_out),
        String::from_utf8_lossy(&warm_out),
        "warm output must be byte-identical to cold"
    );
    assert!(
        warm <= cold,
        "warm lint ({warm:?}) must not be slower than cold ({cold:?})"
    );
}

/// The parse-once fact cache keeps the whole-workspace lint fast: one
/// parse pass shared by the lexical, call-graph, and dataflow rules.
/// Generous 10s budget (debug build, cold file cache) — the point is to
/// catch an accidental return to per-rule re-parsing, which multiplies
/// wall time by the rule count.
#[test]
fn workspace_lint_finishes_within_budget() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");
    let started = std::time::Instant::now();
    let status = Command::new(bin)
        .args(["lint", "--root"])
        .arg(workspace_root())
        .status()
        .expect("lint binary runs");
    let elapsed = started.elapsed();
    assert_eq!(status.code(), Some(0));
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "workspace lint took {elapsed:?}; the parse-once fact cache regressed"
    );
}
