//! Self-tests for specinfer-lint: every rule has a known-bad fixture
//! that triggers exactly that rule, a clean fixture passes all rules,
//! and the binary's exit codes match (non-zero on findings, zero clean).
//!
//! Fixtures live in `tests/fixtures/`, which the workspace scan skips —
//! they are bad *by design* and must only be seen via `--strict`.

use specinfer_xtask::{lint_files_strict, lint_workspace};
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("xtask lives two levels below the workspace root")
}

/// Asserts the fixture yields `count` findings, all of rule `rule`.
fn assert_only_rule(name: &str, rule: &str, count: usize) {
    let findings = lint_files_strict(&[fixture(name)]);
    assert_eq!(
        findings.len(),
        count,
        "{name}: expected {count} findings, got {findings:#?}"
    );
    for f in &findings {
        assert_eq!(
            f.rule, rule,
            "{name}: expected only `{rule}` findings, got {f}"
        );
        assert!(f.line > 0, "{name}: findings carry a 1-based line: {f}");
    }
}

#[test]
fn missing_safety_fixture_triggers_only_safety_comment() {
    assert_only_rule("missing_safety.rs", "safety_comment", 1);
}

#[test]
fn hot_unwrap_fixture_triggers_only_no_unwrap() {
    // One finding each for `.unwrap()`, `.expect(` and `panic!`.
    assert_only_rule("hot_unwrap.rs", "no_unwrap", 3);
}

#[test]
fn wall_clock_fixture_triggers_only_determinism() {
    // One finding each for `Instant::now`, `SystemTime`, `thread_rng`.
    assert_only_rule("wall_clock.rs", "determinism", 3);
}

#[test]
fn rogue_thread_fixture_triggers_only_thread_confinement() {
    // One finding each for `thread::spawn` and `thread::scope`.
    assert_only_rule("rogue_thread.rs", "thread_confinement", 2);
}

#[test]
fn batched_verify_fixture_triggers_unwrap_and_thread_confinement() {
    // The two rules the batched-verification surfaces must obey: no
    // panics under the stacked forward, no thread creation outside the
    // sanctioned pool modules. One finding each.
    let findings = lint_files_strict(&[fixture("batched_verify_bad.rs")]);
    let mut rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(rules, ["no_unwrap", "thread_confinement"], "{findings:#?}");
}

#[test]
fn bad_shim_fixture_triggers_only_shim_hygiene() {
    // Bare registry string, git dep, version table, path escape — and
    // the [package] version must not be flagged.
    assert_only_rule("bad_shim/Cargo.toml", "shim_hygiene", 4);
}

#[test]
fn clean_fixture_passes_every_rule_in_strict_mode() {
    let findings = lint_files_strict(&[fixture("clean.rs")]);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn the_workspace_itself_is_clean() {
    let findings = lint_workspace(&workspace_root());
    assert!(
        findings.is_empty(),
        "workspace lint must stay clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The binary contract: exit 1 on each bad fixture, exit 0 on the clean
/// fixture and on the whole workspace, exit 2 on usage errors.
#[test]
fn binary_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_specinfer-xtask");
    for bad in [
        "missing_safety.rs",
        "hot_unwrap.rs",
        "wall_clock.rs",
        "rogue_thread.rs",
        "batched_verify_bad.rs",
        "bad_shim/Cargo.toml",
    ] {
        let status = Command::new(bin)
            .args(["lint", "--strict"])
            .arg(fixture(bad))
            .status()
            .expect("lint binary runs");
        assert_eq!(status.code(), Some(1), "{bad}: expected exit 1");
    }

    let clean = Command::new(bin)
        .args(["lint", "--strict"])
        .arg(fixture("clean.rs"))
        .status()
        .expect("lint binary runs");
    assert_eq!(clean.code(), Some(0), "clean fixture: expected exit 0");

    let workspace = Command::new(bin)
        .args(["lint", "--root"])
        .arg(workspace_root())
        .status()
        .expect("lint binary runs");
    assert_eq!(workspace.code(), Some(0), "workspace lint: expected exit 0");

    let usage = Command::new(bin)
        .arg("frobnicate")
        .status()
        .expect("lint binary runs");
    assert_eq!(usage.code(), Some(2), "unknown command: expected exit 2");
}
