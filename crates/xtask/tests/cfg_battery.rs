//! The CFG invariant battery pinned by `cfg.rs`'s module doc:
//!
//! 1. every function in the workspace builds a CFG with a single entry
//!    (block 0), every block reachable from it, and the iterative
//!    dominator computation agreeing with the naive O(n²) reference;
//! 2. the same invariants hold on proptest-generated nested control
//!    flow (if/else, match, loops with break/continue, early returns),
//!    which reaches shapes the workspace happens not to contain.

use proptest::prelude::*;
use specinfer_xtask::cfg::{self, Cfg};
use specinfer_xtask::{parse, scan};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("xtask lives two levels below the workspace root")
}

/// Asserts the three battery invariants on one CFG. Returns an error
/// string (rather than panicking) so the proptest wrapper can minimise.
fn check_invariants(cfg: &Cfg, label: &str) -> Result<(), String> {
    let n = cfg.blocks.len();
    if n == 0 {
        return Err(format!("{label}: CFG has no blocks"));
    }
    if cfg.entry != 0 {
        return Err(format!("{label}: entry is block {}, not 0", cfg.entry));
    }

    // Reachability: the builder prunes unreachable blocks, so a plain
    // BFS from the entry must visit everything.
    let mut seen = vec![false; n];
    let mut queue = vec![cfg.entry];
    seen[cfg.entry] = true;
    while let Some(b) = queue.pop() {
        for &s in &cfg.blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
    }
    if let Some(dead) = seen.iter().position(|&r| !r) {
        return Err(format!("{label}: block {dead} unreachable from entry"));
    }

    // Dominators: for every pair (a, b), walking the idom chain must
    // agree with the naive set-intersection fixpoint.
    let idom = cfg::dominators(cfg);
    let naive = cfg::dominators_naive(cfg);
    for (b, row) in naive.iter().enumerate() {
        for (a, &expected) in row.iter().enumerate() {
            let fast = cfg::dominates(&idom, a, b);
            if fast != expected {
                return Err(format!(
                    "{label}: dominates({a}, {b}) = {fast}, naive says {expected}"
                ));
            }
        }
    }
    Ok(())
}

/// Every function in every workspace crate satisfies the invariants —
/// the real corpus, not just synthetic shapes.
#[test]
fn every_workspace_function_satisfies_cfg_invariants() {
    let root = workspace_root();
    let mut stack = vec![root.join("crates")];
    let mut checked = 0usize;
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("readable dir").flatten() {
            let p = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if p.is_dir() {
                if name == "target" || name == "fixtures" {
                    continue;
                }
                stack.push(p);
                continue;
            }
            if !name.ends_with(".rs") {
                continue;
            }
            let rel = p
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&p).expect("readable source");
            let parsed = parse::parse_file(&scan::scan_source(&rel, &src, false));
            for f in &parsed.fns {
                let g = cfg::build(&f.body, f.line);
                let label = format!("{rel}:{} fn {}", f.line, f.name);
                if let Err(e) = check_invariants(&g, &label) {
                    panic!("{e}");
                }
                checked += 1;
            }
        }
    }
    assert!(
        checked > 200,
        "battery looks broken: only {checked} functions checked"
    );
}

/// Grammar for generated bodies: each pick emits one statement-level
/// construct, recursing into nested blocks with the remaining depth.
fn gen_body(picks: &[u8], depth: usize, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent + 1);
    for (i, &p) in picks.iter().enumerate() {
        // Shrink the recursion budget as we go so nesting terminates.
        let rest = &picks[(i + 1).min(picks.len())..];
        let sub = &rest[..rest.len().min(3)];
        match p % 10 {
            0 => out.push_str(&format!("{pad}let a = n + {i};\n")),
            1 if depth > 0 => {
                out.push_str(&format!("{pad}if n > {i} {{\n"));
                gen_body(sub, depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}} else {{\n"));
                gen_body(sub, depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            2 if depth > 0 => {
                out.push_str(&format!("{pad}while n < {i} {{\n"));
                gen_body(sub, depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
            3 if depth > 0 => {
                out.push_str(&format!("{pad}for k in 0..{i} {{\n"));
                gen_body(sub, depth - 1, out, indent + 1);
                if p % 2 == 0 {
                    out.push_str(&format!("{pad}    continue;\n"));
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            4 if depth > 0 => {
                out.push_str(&format!("{pad}loop {{\n"));
                gen_body(sub, depth - 1, out, indent + 1);
                out.push_str(&format!("{pad}    break;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            5 if depth > 0 => {
                out.push_str(&format!("{pad}match n {{\n"));
                out.push_str(&format!("{pad}    0 => {{\n"));
                gen_body(sub, depth - 1, out, indent + 2);
                out.push_str(&format!("{pad}    }}\n"));
                out.push_str(&format!("{pad}    {i} => {{}}\n"));
                out.push_str(&format!("{pad}    _ => {{}}\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            6 if depth > 0 => {
                out.push_str(&format!("{pad}if n == {i} {{\n"));
                out.push_str(&format!("{pad}    return;\n"));
                out.push_str(&format!("{pad}}}\n"));
            }
            7 => out.push_str(&format!("{pad}f(a, {i});\n")),
            8 => out.push_str(&format!("{pad}let b = v[{i} % v.len()];\n")),
            _ => out.push_str(&format!("{pad}a += {i};\n")),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_nested_control_flow_satisfies_cfg_invariants(
        picks in prop::collection::vec(0u8..60, 0..24),
        depth in 0usize..4,
    ) {
        let mut body = String::new();
        gen_body(&picks, depth, &mut body, 0);
        let src = format!("fn f(n: usize, v: Vec<usize>) {{\n{body}}}\n");
        let parsed = parse::parse_file(&scan::scan_source("crates/x/src/gen.rs", &src, false));
        prop_assert!(parsed.errors.is_empty(), "{:?}\n{src}", parsed.errors);
        prop_assert_eq!(parsed.fns.len(), 1, "{}", &src);
        let f = &parsed.fns[0];
        let g = cfg::build(&f.body, f.line);
        let checked = check_invariants(&g, "generated fn");
        prop_assert!(checked.is_ok(), "{}\n{}", checked.unwrap_err(), src);
    }
}
