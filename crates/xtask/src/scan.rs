//! Lexical scan of Rust sources.
//!
//! The lint rules need three things a regex over raw text cannot give
//! them: (1) pattern matches restricted to *code* (a `panic!` inside a
//! string literal or a doc comment is not a violation), (2) the comment
//! text near each line (the `// SAFETY:` rule), and (3) whether a line
//! sits inside a `#[cfg(test)]` region. This module implements a small
//! token-level scanner — line comments, nested block comments, string /
//! raw-string / byte-string / char literals, lifetimes — that classifies
//! every line without a full parse.

/// One source line, split into its lexical classes.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// The original line, verbatim (used for allowlist matching and
    /// diagnostics).
    pub raw: String,
    /// The line with comments removed and literal *contents* blanked;
    /// delimiters are kept so code structure stays visible.
    pub code: String,
    /// Concatenated text of all comments overlapping the line.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item (or the file is
    /// a test/bench/example context as a whole).
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub lines: Vec<ScannedLine>,
}

impl ScannedFile {
    /// Whether the path itself marks a test/bench/example context whose
    /// whole content is exempt from production-code rules.
    pub fn is_test_context(path: &str) -> bool {
        path.contains("/tests/")
            || path.starts_with("tests/")
            || path.contains("/benches/")
            || path.contains("/examples/")
            || path.starts_with("examples/")
    }
}

/// Scans `src`, classifying each line. `force_code` treats the file as
/// production code even if the path looks like a test context (used for
/// lint fixtures, which live under `tests/fixtures/`).
pub fn scan_source(path: &str, src: &str, force_code: bool) -> ScannedFile {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines: Vec<(String, String, String)> = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut comment = String::new();

    // Current lexical state, persisting across newlines.
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;

    let mut i = 0;
    // Flushes the current line buffers.
    macro_rules! flush {
        () => {{
            lines.push((
                std::mem::take(&mut raw),
                std::mem::take(&mut code),
                std::mem::take(&mut comment),
            ));
        }};
    }
    while i < n {
        let c = chars[i];
        if c != '\n' {
            raw.push(c);
        }
        match st {
            St::Code => match c {
                '\n' => flush!(),
                '/' if i + 1 < n && chars[i + 1] == '/' => {
                    // Line comment (incl. doc comments): consume to EOL.
                    i += 1;
                    raw.push(chars[i]);
                    while i + 1 < n && chars[i + 1] != '\n' {
                        i += 1;
                        raw.push(chars[i]);
                        comment.push(chars[i]);
                    }
                }
                '/' if i + 1 < n && chars[i + 1] == '*' => {
                    i += 1;
                    raw.push(chars[i]);
                    st = St::Block(1);
                }
                '"' => {
                    code.push('"');
                    st = St::Str;
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    // Possible raw/byte string prefix: r"", r#""#, b"",
                    // br#""#. Anything else falls through as plain code.
                    let mut j = i + 1;
                    let mut is_raw = c == 'r';
                    if c == 'b' && j < n && chars[j] == 'r' {
                        is_raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    if is_raw {
                        while j < n && chars[j] == '#' {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if j < n && chars[j] == '"' {
                        // Emit the prefix and delimiters; contents are
                        // blanked by the string state.
                        raw.extend(chars[i + 1..=j].iter());
                        code.extend(chars[i..=j].iter());
                        i = j;
                        st = if is_raw { St::RawStr(hashes) } else { St::Str };
                    } else {
                        code.push(c);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime. A char literal is '\…' or
                    // 'x' (single char then a closing quote); anything
                    // else is a lifetime tick.
                    if i + 1 < n && chars[i + 1] == '\\' {
                        code.push('\'');
                        i += 1;
                        raw.push(chars[i]);
                        // Skip the escape body up to the closing quote.
                        while i + 1 < n && chars[i + 1] != '\'' && chars[i + 1] != '\n' {
                            i += 1;
                            raw.push(chars[i]);
                        }
                        if i + 1 < n && chars[i + 1] == '\'' {
                            i += 1;
                            raw.push('\'');
                            code.push('\'');
                        }
                    } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                        code.push('\'');
                        code.push('\'');
                        raw.push(chars[i + 1]);
                        raw.push('\'');
                        i += 2;
                    } else {
                        // Lifetime: keep the tick so `'static` stays in code.
                        code.push('\'');
                    }
                }
                _ => code.push(c),
            },
            St::Block(d) => match c {
                '\n' => flush!(),
                '*' if i + 1 < n && chars[i + 1] == '/' => {
                    i += 1;
                    raw.push('/');
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                }
                '/' if i + 1 < n && chars[i + 1] == '*' => {
                    i += 1;
                    raw.push('*');
                    st = St::Block(d + 1);
                }
                _ => comment.push(c),
            },
            St::Str => match c {
                '\n' => flush!(), // multiline string literal
                '\\' if i + 1 < n && chars[i + 1] != '\n' => {
                    i += 1;
                    raw.push(chars[i]);
                }
                '"' => {
                    code.push('"');
                    st = St::Code;
                }
                _ => {}
            },
            St::RawStr(h) => match c {
                '\n' => flush!(),
                '"' => {
                    let mut ok = true;
                    for k in 0..h as usize {
                        if i + 1 + k >= n || chars[i + 1 + k] != '#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..h {
                            i += 1;
                            raw.push('#');
                        }
                        code.push('"');
                        st = St::Code;
                    }
                }
                _ => {}
            },
        }
        i += 1;
    }
    if !raw.is_empty() || !code.is_empty() || !comment.is_empty() {
        flush!();
    }

    // Second pass: mark `#[cfg(test)]` regions by brace tracking. The
    // attribute applies to the next item; its first `{` opens the region.
    let file_is_test = !force_code && ScannedFile::is_test_context(path);
    let mut out = Vec::with_capacity(lines.len());
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    let mut regions: Vec<i64> = Vec::new();
    for (raw, code, comment) in lines {
        let active_before = !regions.is_empty();
        let mut opened_here = false;
        if code.replace(' ', "").contains("#[cfg(test)]") {
            pending_cfg = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_cfg {
                        regions.push(depth);
                        pending_cfg = false;
                        opened_here = true;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        let in_test = file_is_test || active_before || opened_here || pending_cfg;
        out.push(ScannedLine {
            raw,
            code,
            comment,
            in_test,
        });
    }
    ScannedFile {
        path: path.to_string(),
        lines: out,
    }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Whether `needle` occurs in `hay` delimited by non-identifier chars on
/// both sides — used to match keywords and macro names without catching
/// identifiers that merely contain them.
pub fn word_match(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

/// Byte offset of the first word-delimited occurrence of `needle`.
pub fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || {
            let a = bytes[end] as char;
            !(a.is_alphanumeric() || a == '_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_code() {
        let f = scan_source(
            "crates/x/src/a.rs",
            "let a = \"unsafe panic!\"; // SAFETY: not really\nunsafe { x } /* unwrap() */\n",
            false,
        );
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("SAFETY:"));
        assert!(f.lines[1].code.contains("unsafe"));
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(f.lines[1].comment.contains("unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan_source(
            "crates/x/src/a.rs",
            "let s = r#\"Instant::now()\"#; let t = b\"SystemTime\";\n",
            false,
        );
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(!f.lines[0].code.contains("SystemTime"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = scan_source(
            "crates/x/src/a.rs",
            "fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; }\n",
            false,
        );
        assert!(f.lines[0].code.contains("'a str"));
        assert!(!f.lines[0].code.contains("x';"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn prod2() {}\n";
        let f = scan_source("crates/x/src/a.rs", src, false);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line belongs to the region");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn nested_block_comments() {
        let f = scan_source("crates/x/src/a.rs", "/* a /* b */ still */ code()\n", false);
        assert!(f.lines[0].code.contains("code()"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn test_context_paths_mark_whole_file() {
        let f = scan_source("crates/x/tests/t.rs", "x.unwrap();\n", false);
        assert!(f.lines[0].in_test);
        let forced = scan_source("crates/x/tests/fixtures/t.rs", "x.unwrap();\n", true);
        assert!(!forced.lines[0].in_test);
    }

    #[test]
    fn word_match_respects_boundaries() {
        assert!(word_match("unsafe {", "unsafe"));
        assert!(!word_match("not_unsafe_fn()", "unsafe"));
        assert!(word_match("core::panic!(\"x\")", "panic!"));
    }
}
