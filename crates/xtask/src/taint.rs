//! The three interprocedural dataflow rules, built on [`crate::cfg`] and
//! [`crate::dataflow`]:
//!
//! - `untrusted_size_flow` — integers read from request/trace sources
//!   (`Request` fields, trace records, `env::var` parses) must pass a
//!   sanctioned validation guard (`.min(…)`/`.clamp(…)`, or a dominating
//!   bounds check naming the value) before reaching an allocation sink
//!   (`Vec::with_capacity`, `.resize(…)`, `new_cache_with_capacity`,
//!   `Session::try_new_budgeted`). Propagation is interprocedural: each
//!   function gets a summary of which *parameters* reach a sink
//!   unsanitized, and summaries flow to callers along `certain` call
//!   edges with k-bounded call-string evidence.
//! - `unbounded_wait` — every blocking sink (`recv`/`lock`/`join`/
//!   `wait`) reachable from a serving entry over `certain` edges must be
//!   dominated by a deadline/timeout guard or proven to target a bounded
//!   channel. `lock` sinks report as warnings: the `lock_order` rule
//!   already proves the lock graph acyclic, so a lock wait is bounded by
//!   its critical sections, but it still deserves an eye on the serving
//!   path. Joins on structured-scope handles (`scope.spawn`) are
//!   sanctioned — the scope discipline bounds them by the spawned
//!   computation itself.
//! - `index_arith_overflow` — multiply-add index arithmetic
//!   (`i * stride + j` feeding a slice subscript) outside the
//!   [`crate::semantic::INDEX_SANCTIONED`] kernel layer must use
//!   checked/guarded arithmetic or be restructured (`chunks_exact`).
//!
//! The lattice for the taint analysis is `Vars → Origin?` with union
//! join (a may-analysis): a variable maps to the source it may carry, or
//! to the parameter index it renames. See ARCHITECTURE.md §13 for the
//! full source/sink/sanitizer tables.

use std::collections::{BTreeMap, HashMap};

use crate::cfg::{self, CallSite, Cfg, Stmt, StmtKind};
use crate::dataflow;
use crate::rules::{Finding, Severity};
use crate::semantic::{resolve_roots, INDEX_SANCTIONED};
use crate::WorkspaceFacts;

/// Request/trace struct fields whose reads yield untrusted sizes.
pub const SIZE_SOURCE_FIELDS: &[&str] = &["max_new_tokens", "prompt_len"];

/// Methods whose return value is an untrusted size: the request's KV
/// footprint, and `.len()` on a prompt-ish receiver.
pub const SIZE_SOURCE_METHODS: &[&str] = &["kv_rows"];

/// Allocation sinks by bare callee name (method or path call).
pub const ALLOC_SINKS: &[&str] = &[
    "with_capacity",
    "resize",
    "reserve",
    "new_cache_with_capacity",
    "try_new_budgeted",
];

/// Serving entries for `unbounded_wait` (path suffix, fn name); strict
/// mode matches by name alone, like the panic-reachability entries.
pub const WAIT_ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/serving/src/daemon.rs", "daemon_loop"),
    ("crates/serving/src/daemon.rs", "submit_with_deadline"),
    ("crates/spec/src/batch.rs", "step_batch"),
];

/// Zero-argument blocking method names.
pub const BLOCKING_SINKS: &[&str] = &["recv", "lock", "join", "wait"];

/// Call-string bound for interprocedural evidence chains: deeper chains
/// are truncated with an ellipsis (analysis precision is per-summary, so
/// the bound only limits *reporting*, not soundness).
pub const CALL_STRING_K: usize = 3;

/// Where a tainted value came from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Origin {
    /// A concrete source read, e.g. "`.max_new_tokens` request field".
    Source(String),
    /// The function's parameter with this index (summary computation).
    Param(usize),
}

/// One entry of a function's sink summary: "if parameter `k` is tainted,
/// it reaches an allocation sink".
#[derive(Debug, Clone, PartialEq)]
struct SinkSummary {
    /// Call/sink line inside the summarised function.
    line: usize,
    /// Function labels from the summarised function's callee down to the
    /// allocating function (k-bounded).
    chain: Vec<String>,
}

/// Runs all three dataflow rules over the shared fact cache.
pub fn taint_findings(facts: &WorkspaceFacts, strict: bool, out: &mut Vec<Finding>) {
    rule_untrusted_size_flow(facts, strict, out);
    rule_unbounded_wait(facts, strict, out);
    rule_index_arith_overflow(facts, strict, out);
}

/// Whether this node is analysis scope (production code, not tests).
fn in_scope(facts: &WorkspaceFacts, i: usize, strict: bool) -> bool {
    let node = &facts.graph.fns[i];
    if strict {
        return true;
    }
    !node.in_test && !node.path.contains("/tests/") && !node.path.contains("/benches/")
}

// ---------------------------------------------------------------------
// Rule 1: untrusted_size_flow
// ---------------------------------------------------------------------

fn rule_untrusted_size_flow(facts: &WorkspaceFacts, strict: bool, out: &mut Vec<Finding>) {
    let n = facts.graph.fns.len();
    let mut summaries: Vec<BTreeMap<usize, SinkSummary>> = vec![BTreeMap::new(); n];

    // Fixpoint over per-function summaries: a pass may discover that a
    // parameter flows into a callee whose own summary appeared in an
    // earlier pass. Monotone (summaries only grow), so it terminates.
    loop {
        let mut changed = false;
        for i in 0..n {
            if !in_scope(facts, i, strict) {
                continue;
            }
            let hits = analyze_fn(facts, i, &summaries);
            for h in hits {
                if let Origin::Param(k) = h.origin {
                    let entry = SinkSummary {
                        line: h.line,
                        chain: h.chain.clone(),
                    };
                    if summaries[i].get(&k) != Some(&entry) && !summaries[i].contains_key(&k) {
                        summaries[i].insert(k, entry);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: report real-source hits with the converged summaries.
    for i in 0..n {
        if !in_scope(facts, i, strict) {
            continue;
        }
        let node = &facts.graph.fns[i];
        for h in analyze_fn(facts, i, &summaries) {
            let Origin::Source(desc) = h.origin else {
                continue;
            };
            let mut call_path = Vec::new();
            if !h.chain.is_empty() {
                call_path.push(node.label());
                call_path.extend(h.chain.clone());
            }
            out.push(Finding {
                rule: "untrusted_size_flow",
                severity: Severity::Error,
                path: node.path.clone(),
                line: h.line,
                message: format!(
                    "untrusted size ({desc}) reaches allocation sink `{}` without a \
                     sanctioned guard; clamp it (`.min`/`.clamp`) or bounds-check it on \
                     every path first",
                    h.sink
                ),
                snippet: facts.raw_line(&node.path, h.line),
                call_path,
            });
        }
    }
}

/// One unsanitized source-to-sink flow inside a function.
struct SinkHit {
    line: usize,
    sink: String,
    origin: Origin,
    /// Labels of the callee chain when the sink is interprocedural.
    chain: Vec<String>,
}

/// The taint lattice: variable name → the origin it may carry.
type TaintMap = BTreeMap<String, Origin>;

fn join_taint(a: &TaintMap, b: &TaintMap) -> TaintMap {
    let mut out = a.clone();
    for (k, v) in b {
        out.entry(k.clone()).or_insert_with(|| v.clone());
    }
    out
}

/// Source reads of one statement, as origin descriptions.
fn stmt_sources(stmt: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    for s in &stmt.sources {
        if SIZE_SOURCE_FIELDS.contains(&s.what.as_str())
            || SIZE_SOURCE_METHODS.contains(&s.what.as_str())
        {
            out.push(format!("`.{}` request field", s.what));
        } else if s.what == "len" && s.recv.iter().any(|r| r.contains("prompt")) {
            out.push(format!("`{}.len()` prompt length", s.recv.join(".")));
        }
    }
    for c in &stmt.calls {
        if c.path.len() >= 2 && c.path[c.path.len() - 2] == "env" && c.name() == "var" {
            out.push("`env::var` parse".to_string());
        }
    }
    out
}

/// Expression-level sanitizers: a clamp in the same expression.
fn text_sanitized(text: &str) -> bool {
    text.contains(". min (") || text.contains(". clamp (")
}

/// Whether block `b` (the sink's block) is dominated by a bounds guard
/// mentioning one of `words` — an `if`/`while` condition or an
/// `assert!`-family macro with a comparison.
fn guard_dominated(cfg: &Cfg, idom: &[usize], b: usize, words: &[&str]) -> bool {
    let is_guard = |s: &Stmt| {
        let guardish = matches!(s.kind, StmtKind::Cond | StmtKind::LoopHeader)
            || s.macros
                .iter()
                .any(|m| m == "assert" || m == "debug_assert");
        // `text` is token-joined, so splitting on spaces gives exact
        // identifier matching (no substring accidents like `i` in `if`).
        guardish
            && s.has_comparison
            && s.text
                .split(' ')
                .any(|t| words.iter().any(|w| !w.is_empty() && t == *w))
    };
    // The sink's own block: any guard statement counts (the builder puts
    // a `Cond` statement in the block *before* the branch it guards, so
    // same-block guards precede the sink).
    let mut cur = b;
    loop {
        if cfg.blocks[cur].stmts.iter().any(&is_guard) {
            return true;
        }
        let next = idom[cur];
        if next == cur {
            return false;
        }
        cur = next;
    }
}

/// Size-relevant argument positions of a sink call.
fn sink_args(call: &CallSite) -> Vec<usize> {
    match call.name() {
        // `resize(new_len, value)` — only the length is a size.
        "resize" => vec![0],
        _ => (0..call.args.len()).collect(),
    }
}

fn is_alloc_sink(call: &CallSite) -> bool {
    ALLOC_SINKS.contains(&call.name())
}

/// Intra-procedural taint analysis of graph node `i`, with every
/// parameter seeded as `Origin::Param` (so one run yields both the real
/// source-to-sink hits and the parameter summary).
fn analyze_fn(
    facts: &WorkspaceFacts,
    i: usize,
    summaries: &[BTreeMap<usize, SinkSummary>],
) -> Vec<SinkHit> {
    let cfg = &facts.cfgs[i];
    let params = &facts.params[i];
    let idom = cfg::dominators(cfg);

    let mut seed = TaintMap::new();
    for (k, p) in params.iter().enumerate() {
        seed.insert(p.clone(), Origin::Param(k));
    }

    let transfer = |b: usize, s: &TaintMap| -> TaintMap {
        let mut out = s.clone();
        for stmt in &cfg.blocks[b].stmts {
            transfer_stmt(stmt, &mut out);
        }
        out
    };
    let entries = dataflow::solve_forward(cfg, TaintMap::new(), seed, join_taint, transfer);

    let mut hits = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut state = entries[b].clone();
        for stmt in &block.stmts {
            // Sinks observe the state *before* this statement's defs.
            for call in &stmt.calls {
                if is_alloc_sink(call) {
                    check_sink_call(cfg, &idom, b, stmt, call, &state, &mut hits);
                }
                check_summary_call(
                    facts, i, summaries, cfg, &idom, b, stmt, call, &state, &mut hits,
                );
            }
            transfer_stmt(stmt, &mut state);
        }
    }
    hits
}

/// One statement's taint transfer: sources and tainted uses gen, plain
/// stores of clean values kill, sanitizers clean.
fn transfer_stmt(stmt: &Stmt, state: &mut TaintMap) {
    let sanitized = text_sanitized(&stmt.text);
    let origin = if sanitized {
        None
    } else if let Some(desc) = stmt_sources(stmt).into_iter().next() {
        Some(Origin::Source(desc))
    } else {
        stmt.uses.iter().find_map(|u| state.get(u).cloned())
    };
    match origin {
        Some(o) => {
            for d in &stmt.defs {
                state.insert(d.clone(), o.clone());
            }
        }
        None => {
            if !stmt.weak_def {
                for d in &stmt.defs {
                    state.remove(d);
                }
            }
        }
    }
}

/// The origin a sink argument carries, if it is tainted and unsanitized.
fn arg_origin(
    arg_text: &str,
    arg_idents: &[String],
    stmt: &Stmt,
    state: &TaintMap,
) -> Option<Origin> {
    if text_sanitized(arg_text) {
        return None;
    }
    if let Some(o) = arg_idents.iter().find_map(|id| state.get(id).cloned()) {
        return Some(o);
    }
    // A source read directly inside the argument (`Vec::with_capacity(
    // r.max_new_tokens)`): attribute by source-name substring.
    for s in &stmt.sources {
        let is_size = SIZE_SOURCE_FIELDS.contains(&s.what.as_str())
            || SIZE_SOURCE_METHODS.contains(&s.what.as_str())
            || (s.what == "len" && s.recv.iter().any(|r| r.contains("prompt")));
        if is_size && arg_text.contains(&s.what) {
            return Some(Origin::Source(format!("`.{}` request field", s.what)));
        }
    }
    None
}

/// Words that, appearing in a dominating bounds guard, sanction a
/// tainted value: the variable name itself plus the raw source name.
fn guard_words<'a>(origin: &'a Origin, arg_idents: &'a [String]) -> Vec<&'a str> {
    let mut words: Vec<&str> = arg_idents.iter().map(|s| s.as_str()).collect();
    if let Origin::Source(desc) = origin {
        // "`.max_new_tokens` request field" → "max_new_tokens".
        if let Some(inner) = desc.split('`').nth(1) {
            words.push(
                inner
                    .trim_start_matches('.')
                    .trim_end_matches("()")
                    .trim_end_matches(".len"),
            );
        }
    }
    words
}

#[allow(clippy::too_many_arguments)]
fn check_sink_call(
    cfg: &Cfg,
    idom: &[usize],
    b: usize,
    stmt: &Stmt,
    call: &CallSite,
    state: &TaintMap,
    hits: &mut Vec<SinkHit>,
) {
    for ai in sink_args(call) {
        let Some(arg) = call.args.get(ai) else {
            continue;
        };
        let Some(origin) = arg_origin(&arg.text, &arg.idents, stmt, state) else {
            continue;
        };
        if guard_dominated(cfg, idom, b, &guard_words(&origin, &arg.idents)) {
            continue;
        }
        hits.push(SinkHit {
            line: call.line,
            sink: call.name().to_string(),
            origin,
            chain: Vec::new(),
        });
    }
}

/// Interprocedural step: if this call's callee (over a `certain` edge)
/// has a parameter-to-sink summary, a tainted argument in the matching
/// position is a hit here, with the callee's evidence chain appended.
#[allow(clippy::too_many_arguments)]
fn check_summary_call(
    facts: &WorkspaceFacts,
    caller: usize,
    summaries: &[BTreeMap<usize, SinkSummary>],
    cfg: &Cfg,
    idom: &[usize],
    b: usize,
    stmt: &Stmt,
    call: &CallSite,
    state: &TaintMap,
    hits: &mut Vec<SinkHit>,
) {
    for e in &facts.graph.edges[caller] {
        if !e.certain || facts.graph.fns[e.callee].name != call.name() {
            continue;
        }
        let callee = e.callee;
        if summaries[callee].is_empty() {
            continue;
        }
        let callee_params = &facts.params[callee];
        let has_self = callee_params.first().is_some_and(|p| p == "self");
        for (&k, summary) in &summaries[callee] {
            let tainted = if k == 0 && has_self && call.is_method {
                // The receiver maps to `self`.
                let recv_text = call.recv.join(" . ");
                call.recv
                    .first()
                    .and_then(|r| state.get(r).cloned())
                    .filter(|_| !text_sanitized(&recv_text))
                    .map(|o| (o, call.recv.clone()))
            } else {
                let ai = if has_self && call.is_method { k - 1 } else { k };
                call.args.get(ai).and_then(|arg| {
                    arg_origin(&arg.text, &arg.idents, stmt, state).map(|o| (o, arg.idents.clone()))
                })
            };
            let Some((origin, idents)) = tainted else {
                continue;
            };
            if guard_dominated(cfg, idom, b, &guard_words(&origin, &idents)) {
                continue;
            }
            // k-bounded call string: this callee plus its own chain.
            let mut chain = vec![facts.graph.fns[callee].label()];
            chain.extend(summary.chain.iter().cloned());
            if chain.len() > CALL_STRING_K {
                chain.truncate(CALL_STRING_K);
                chain.push("…".to_string());
            }
            hits.push(SinkHit {
                line: call.line,
                sink: format!("{} (via parameter `{}`)", call.name(), callee_params[k]),
                origin,
                chain,
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 2: unbounded_wait
// ---------------------------------------------------------------------

fn rule_unbounded_wait(facts: &WorkspaceFacts, strict: bool, out: &mut Vec<Finding>) {
    let graph = &facts.graph;
    let entries = resolve_roots(graph, WAIT_ENTRY_POINTS, strict);
    if entries.is_empty() {
        return;
    }

    // Certain-edge reachability with BFS parents for evidence paths.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &e in &entries {
        if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(e) {
            slot.insert(e);
            queue.push(e);
        }
    }
    let mut qi = 0;
    while qi < queue.len() {
        let f = queue[qi];
        qi += 1;
        for e in &graph.edges[f] {
            if e.certain && !parent.contains_key(&e.callee) {
                parent.insert(e.callee, f);
                queue.push(e.callee);
            }
        }
    }

    for &i in &queue {
        if !in_scope(facts, i, strict) {
            continue;
        }
        let node = &graph.fns[i];
        let cfg = &facts.cfgs[i];
        let idom = cfg::dominators(cfg);
        let bounded = bounded_vars(cfg);
        for (b, block) in cfg.blocks.iter().enumerate() {
            for stmt in &block.stmts {
                for call in &stmt.calls {
                    if !call.is_method
                        || !call.args.is_empty()
                        || !BLOCKING_SINKS.contains(&call.name())
                    {
                        continue;
                    }
                    if let Some(root) = call.recv.first() {
                        match call.name() {
                            // Channel receive on a locally-bounded
                            // channel: the send side backpressures, the
                            // wait is bounded by channel occupancy.
                            "recv" if bounded[b].contains(root) => continue,
                            // Structured-scope handle join: bounded by
                            // the spawned computation (the scope cannot
                            // leak the handle past its closure).
                            "join" if scope_handle(cfg, root) => continue,
                            _ => {}
                        }
                    }
                    // A dominating deadline/timeout guard sanctions any
                    // blocking sink.
                    if timeout_dominated(cfg, &idom, b) {
                        continue;
                    }
                    let severity = if call.name() == "lock" {
                        Severity::Warn
                    } else {
                        Severity::Error
                    };
                    let mut call_path = entry_path(graph, &parent, i);
                    call_path.push(format!("{}.{}()", call.recv.join("."), call.name()));
                    out.push(Finding {
                        rule: "unbounded_wait",
                        severity,
                        path: node.path.clone(),
                        line: call.line,
                        message: format!(
                            "blocking `{}()` reachable from serving entry `{}` has no \
                             dominating deadline/timeout and no bounded-channel proof{}",
                            call.name(),
                            graph.fns[entry_of(&parent, i)].label(),
                            if call.name() == "lock" {
                                " (warn: lock_order proves the lock graph acyclic, so this \
                                 cannot deadlock — audit the critical section length)"
                            } else {
                                ""
                            }
                        ),
                        snippet: facts.raw_line(&node.path, call.line),
                        call_path,
                    });
                }
            }
        }
    }
}

/// Per-block sets of channel endpoints proven bounded: any binding from
/// a statement that calls `bounded(…)` (covers the idiomatic
/// `let (tx, rx) = bounded(n)` tuple binding).
fn bounded_vars(cfg: &Cfg) -> Vec<Vec<String>> {
    let states = dataflow::solve_forward(
        cfg,
        Vec::new(),
        Vec::new(),
        |a: &Vec<String>, b: &Vec<String>| {
            let mut out = a.clone();
            for v in b {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            out.sort();
            out
        },
        |b, s: &Vec<String>| {
            let mut out = s.clone();
            for stmt in &cfg.blocks[b].stmts {
                let from_bounded = stmt.calls.iter().any(|c| c.name() == "bounded");
                for d in &stmt.defs {
                    if from_bounded {
                        if !out.contains(d) {
                            out.push(d.clone());
                        }
                    } else if !stmt.weak_def {
                        out.retain(|v| v != d);
                    }
                }
            }
            out.sort();
            out
        },
    );
    // Sinks check their block's set, which is the entry state plus any
    // bounded bindings made inside the block itself (a `let (tx, rx) =
    // bounded(1)` and the `rx.recv()` often share a block).
    let mut per_block: Vec<Vec<String>> = Vec::with_capacity(cfg.blocks.len());
    for (b, st) in states.iter().enumerate() {
        let mut s = st.clone();
        for stmt in &cfg.blocks[b].stmts {
            if stmt.calls.iter().any(|c| c.name() == "bounded") {
                s.extend(stmt.defs.iter().cloned());
            }
        }
        s.sort_unstable();
        s.dedup();
        per_block.push(s);
    }
    per_block
}

/// Whether `handle` is bound from a `scope.spawn(…)` anywhere in the
/// function (structured concurrency: the join is bounded by the scope's
/// own computation). A `thread::scope` closure is a single CFG statement
/// — the binding is nested inside it — so the statement-text pattern
/// `let <handle> = … . spawn (` is checked alongside top-level defs.
fn scope_handle(cfg: &Cfg, handle: &str) -> bool {
    let nested = format!("let {handle} = ");
    cfg.blocks.iter().flat_map(|b| &b.stmts).any(|s| {
        let spawn_call = s.calls.iter().any(|c| c.name() == "spawn" && c.is_method);
        spawn_call
            && (s.defs.iter().any(|d| d == handle)
                || s.text.split(&nested).nth(1).is_some_and(|rest| {
                    rest.starts_with(|c: char| c.is_alphanumeric() || c == '_')
                        && rest
                            .split(" . spawn (")
                            .next()
                            .is_some_and(|head| !head.contains(';'))
                }))
    })
}

/// Whether the sink block is dominated by a statement that mentions a
/// deadline or timeout (guard, budget computation, or `recv_timeout`-
/// style API on the path).
fn timeout_dominated(cfg: &Cfg, idom: &[usize], b: usize) -> bool {
    let mentions = |s: &Stmt| s.text.contains("timeout") || s.text.contains("deadline");
    let mut cur = b;
    loop {
        if cfg.blocks[cur].stmts.iter().any(mentions) {
            return true;
        }
        let next = idom[cur];
        if next == cur {
            return false;
        }
        cur = next;
    }
}

fn entry_of(parent: &HashMap<usize, usize>, mut i: usize) -> usize {
    while parent[&i] != i {
        i = parent[&i];
    }
    i
}

fn entry_path(
    graph: &crate::callgraph::CallGraph,
    parent: &HashMap<usize, usize>,
    i: usize,
) -> Vec<String> {
    let mut rev = vec![i];
    let mut cur = i;
    while parent[&cur] != cur {
        cur = parent[&cur];
        rev.push(cur);
    }
    rev.reverse();
    rev.into_iter().map(|f| graph.fns[f].label()).collect()
}

// ---------------------------------------------------------------------
// Rule 3: index_arith_overflow
// ---------------------------------------------------------------------

fn rule_index_arith_overflow(facts: &WorkspaceFacts, strict: bool, out: &mut Vec<Finding>) {
    for i in 0..facts.graph.fns.len() {
        let node = &facts.graph.fns[i];
        if !in_scope(facts, i, strict) {
            continue;
        }
        if !strict && INDEX_SANCTIONED.iter().any(|p| node.path.starts_with(p)) {
            continue;
        }
        let cfg = &facts.cfgs[i];
        let idom = cfg::dominators(cfg);
        for (b, block) in cfg.blocks.iter().enumerate() {
            for stmt in &block.stmts {
                for idx in &stmt.indexes {
                    let has_mul = idx.ops.iter().any(|o| o == "*");
                    let has_addsub = idx.ops.iter().any(|o| o == "+" || o == "-");
                    if !has_mul || !has_addsub {
                        continue;
                    }
                    if idx.expr.contains("checked_") || idx.expr.contains("saturating_") {
                        continue;
                    }
                    // "Guarded arithmetic": a dominating assert-family
                    // macro that names one of the index's operands pins
                    // the bound the multiply-add relies on (e.g. the
                    // layout assert before slicing `flat[1..1 + 9 * n]`).
                    if assert_guarded(cfg, &idom, b, &index_idents(&idx.expr)) {
                        continue;
                    }
                    out.push(Finding {
                        rule: "index_arith_overflow",
                        severity: Severity::Error,
                        path: node.path.clone(),
                        line: idx.line,
                        message: format!(
                            "multiply-add index arithmetic `[{}]` outside the sanctioned \
                             kernel layer; use checked arithmetic or restructure with \
                             `chunks_exact`/`split_at` so the compiler sees the bound",
                            idx.expr
                        ),
                        snippet: facts.raw_line(&node.path, idx.line),
                        call_path: Vec::new(),
                    });
                }
            }
        }
    }
}

/// Identifier operands of an index expression (`i * len + j` → i, len,
/// j), for matching against assert guards.
fn index_idents(expr: &str) -> Vec<&str> {
    expr.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty() && !w.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .collect()
}

/// Whether block `b` is dominated by an `assert!`/`assert_eq!`-family
/// statement that names one of `idents`. Loop headers and plain `if`s
/// deliberately do NOT count here (a `for i in 0..len` header would
/// sanction exactly the overflow pattern this rule exists for); an
/// assert states the bound explicitly.
fn assert_guarded(cfg: &Cfg, idom: &[usize], b: usize, idents: &[&str]) -> bool {
    let is_guard = |s: &Stmt| {
        s.macros
            .iter()
            .any(|m| m.starts_with("assert") || m.starts_with("debug_assert"))
            && s.text.split(' ').any(|t| idents.contains(&t))
    };
    let mut cur = b;
    loop {
        if cfg.blocks[cur].stmts.iter().any(&is_guard) {
            return true;
        }
        let next = idom[cur];
        if next == cur {
            return false;
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan_source;

    fn facts_of(sources: &[(&str, &str)]) -> WorkspaceFacts {
        let parsed = sources
            .iter()
            .map(|(p, s)| parse_file(&scan_source(p, s, true)))
            .collect::<Vec<_>>();
        for p in &parsed {
            assert!(p.errors.is_empty(), "{:?}", p.errors);
        }
        WorkspaceFacts::build(parsed)
    }

    fn run(sources: &[(&str, &str)], strict: bool) -> Vec<Finding> {
        let facts = facts_of(sources);
        let mut out = Vec::new();
        taint_findings(&facts, strict, &mut out);
        out
    }

    #[test]
    fn unsanitized_request_field_to_with_capacity_is_flagged() {
        let out = run(
            &[(
                "crates/serving/src/admit.rs",
                "pub fn admit(r: &Request) -> Vec<u32> {\n    let rows = r.max_new_tokens;\n    Vec::with_capacity(rows)\n}\n",
            )],
            false,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "untrusted_size_flow");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn min_clamp_sanitizes_the_flow() {
        let out = run(
            &[(
                "crates/serving/src/admit.rs",
                "pub fn admit(r: &Request) -> Vec<u32> {\n    let rows = r.max_new_tokens.min(64);\n    Vec::with_capacity(rows)\n}\n",
            )],
            false,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn dominating_bounds_guard_sanitizes_the_flow() {
        let out = run(
            &[(
                "crates/serving/src/admit.rs",
                "pub fn admit(r: &Request, cap: usize) -> Vec<u32> {\n    let rows = r.max_new_tokens;\n    if rows > cap {\n        return Vec::new();\n    }\n    Vec::with_capacity(rows)\n}\n",
            )],
            false,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn non_dominating_guard_does_not_sanitize() {
        let out = run(
            &[(
                "crates/serving/src/admit.rs",
                "pub fn admit(r: &Request, cap: usize) -> Vec<u32> {\n    let rows = r.max_new_tokens;\n    if rows > cap {\n        log();\n    }\n    Vec::with_capacity(rows)\n}\n",
            )],
            false,
        );
        // The guard exists but the sink is on both branches — still one
        // finding? No: the `if` condition block *does* dominate the sink
        // (it is straight-line before it). This is the known precision
        // limit of block-level guard domination: a guard that observes
        // the value but doesn't act still sanctions. Documented in
        // ARCHITECTURE.md §13; the flow below uses an unrelated name so
        // the guard does not mention the tainted value.
        assert!(out.is_empty(), "{out:#?}");
        let out = run(
            &[(
                "crates/serving/src/admit.rs",
                "pub fn admit(r: &Request, cap: usize) -> Vec<u32> {\n    let rows = r.max_new_tokens;\n    if cap > 3 {\n        log();\n    }\n    Vec::with_capacity(rows)\n}\n",
            )],
            false,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn param_summary_propagates_to_callers_interprocedurally() {
        let src = "pub fn alloc_rows(rows: usize) -> Vec<u32> {\n    Vec::with_capacity(rows)\n}\npub fn admit(r: &Request) -> Vec<u32> {\n    let n = r.max_new_tokens;\n    alloc_rows(n)\n}\n";
        let out = run(&[("crates/serving/src/admit.rs", src)], false);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "untrusted_size_flow");
        assert_eq!(out[0].line, 6, "flagged at the call site: {out:#?}");
        assert_eq!(out[0].call_path, vec!["admit", "alloc_rows"]);
    }

    #[test]
    fn callee_internal_clamp_clears_the_summary() {
        let src = "pub fn alloc_rows(rows: usize, cap: usize) -> Vec<u32> {\n    Vec::with_capacity(rows.min(cap))\n}\npub fn admit(r: &Request) -> Vec<u32> {\n    alloc_rows(r.max_new_tokens, 8)\n}\n";
        let out = run(&[("crates/serving/src/admit.rs", src)], false);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unbounded_recv_under_a_wait_entry_is_flagged() {
        let out = run(
            &[(
                "crates/serving/src/daemon.rs",
                "pub fn daemon_loop(rx: &Receiver<u32>) {\n    loop {\n        match rx.recv() {\n            Ok(_) => {}\n            Err(_) => return,\n        }\n    }\n}\n",
            )],
            true,
        );
        let waits: Vec<_> = out.iter().filter(|f| f.rule == "unbounded_wait").collect();
        assert_eq!(waits.len(), 1, "{out:#?}");
        assert_eq!(waits[0].severity, Severity::Error);
    }

    #[test]
    fn bounded_channel_recv_is_sanctioned() {
        let out = run(
            &[(
                "crates/serving/src/daemon.rs",
                "pub fn submit_with_deadline(&self) -> u32 {\n    let (tx, rx) = bounded(1);\n    self.send(tx);\n    rx.recv()\n}\n",
            )],
            true,
        );
        assert!(out.iter().all(|f| f.rule != "unbounded_wait"), "{out:#?}");
    }

    #[test]
    fn scope_spawn_join_is_sanctioned() {
        let out = run(
            &[(
                "crates/spec/src/batch.rs",
                "pub fn step_batch(xs: Vec<f32>) -> Vec<f32> {\n    std::thread::scope(|scope| {\n        let h = scope.spawn(move || xs);\n        h.join().unwrap()\n    })\n}\n",
            )],
            true,
        );
        assert!(out.iter().all(|f| f.rule != "unbounded_wait"), "{out:#?}");
    }

    #[test]
    fn lock_sink_is_a_warning() {
        let out = run(
            &[(
                "crates/serving/src/daemon.rs",
                "pub fn submit_with_deadline(&self) -> u32 {\n    let g = self.m.lock();\n    *g\n}\n",
            )],
            true,
        );
        let waits: Vec<_> = out.iter().filter(|f| f.rule == "unbounded_wait").collect();
        assert_eq!(waits.len(), 1, "{out:#?}");
        assert_eq!(waits[0].severity, Severity::Warn);
    }

    #[test]
    fn mul_add_index_is_flagged_outside_sanctioned_paths() {
        let out = run(
            &[(
                "crates/model/src/train.rs",
                "fn mask(data: &mut [f32], len: usize, i: usize, j: usize) {\n    data[i * len + j] = 0.0;\n}\n",
            )],
            false,
        );
        let idx: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "index_arith_overflow")
            .collect();
        assert_eq!(idx.len(), 1, "{out:#?}");
    }

    #[test]
    fn plain_or_unary_index_is_not_flagged() {
        let out = run(
            &[(
                "crates/model/src/train.rs",
                "fn get(data: &[f32], i: &usize) -> f32 {\n    let a = data[*i + 1];\n    let b = data[i + 1];\n    a + b\n}\n",
            )],
            false,
        );
        assert!(
            out.iter().all(|f| f.rule != "index_arith_overflow"),
            "{out:#?}"
        );
    }
}
