//! Module-resolved workspace call graph over [`crate::parse`] output.
//!
//! Nodes are parsed functions; edges come from three resolution forms,
//! in decreasing precision:
//!
//! 1. **Path calls** — `helper()`, `module::helper()`,
//!    `Type::method()`. Resolved through the file's `use` map, then
//!    same-module → same-file → same-crate free functions; `Type::`/
//!    `Self::` qualifiers match by impl owner.
//! 2. **`self.method()`** — resolved to methods of the enclosing impl
//!    type only.
//! 3. **`recv.method()`** — over-approximated to every workspace method
//!    of that name (receiver types are unknown without full inference).
//!    This errs toward *more* edges, which is the safe direction for
//!    reachability rules: a spurious edge can at worst demand a
//!    justification, never hide a panic path.
//!
//! Shim crates (`shims/`) are deliberately outside the graph: they stand
//! in for external libraries, and the lexical `shim_hygiene` rule owns
//! them. Functions in `cfg(test)` regions contribute no nodes or edges.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::parse::{Fact, ParsedFile};

/// One function node in the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Source file (workspace-relative where possible).
    pub path: String,
    /// Crate directory name (`spec`, `model`, …).
    pub krate: String,
    /// Module path inside the crate (file stem + inline `mod`s).
    pub module: Vec<String>,
    /// Enclosing impl/trait type, if any.
    pub owner: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Raw signature line (diagnostics + allowlist matching).
    pub sig: String,
    pub in_test: bool,
    /// Body facts, as parsed.
    pub facts: Vec<Fact>,
}

impl FnNode {
    /// `owner::name` or bare `name` — the human-readable label used in
    /// call-path evidence.
    pub fn label(&self) -> String {
        match &self.owner {
            Some(o) => format!("{}::{}", o, self.name),
            None => self.name.clone(),
        }
    }
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// Line of the call site in the caller.
    pub line: usize,
    /// Whether the call site sits inside a loop in the caller.
    pub in_loop: bool,
    /// `false` for unknown-receiver method-name over-approximation,
    /// `true` for path-/`self.`-resolved calls. Reachability rules use
    /// every edge (more edges is the safe direction); the lock-order
    /// rule propagates held-lock sets only across certain edges, since a
    /// name-matched edge can manufacture a cycle that no real execution
    /// can take.
    pub certain: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function, deduped by callee (first site wins).
    pub edges: Vec<Vec<Edge>>,
}

/// The workspace crate dependency map: crate → crates it may call into.
/// Method-name resolution over-approximates receiver types, so it is
/// filtered by layering — an edge may only point at the caller's crate
/// or one of its dependencies (dependencies point downward; `model` can
/// never call into `serving`, whatever a method happens to be named).
/// A test pins this table against the actual `Cargo.toml`s.
pub const CRATE_DEPS: &[(&str, &[&str])] = &[
    ("tensor", &[]),
    ("tokentree", &[]),
    ("sim", &[]),
    ("model", &["tensor", "tokentree"]),
    ("workloads", &["tensor", "tokentree"]),
    ("spec", &["model", "tensor", "tokentree"]),
    (
        "serving",
        &["model", "sim", "spec", "tensor", "tokentree", "workloads"],
    ),
    (
        "bench",
        &[
            "model",
            "serving",
            "sim",
            "spec",
            "tensor",
            "tokentree",
            "workloads",
        ],
    ),
    (
        "cli",
        &[
            "model",
            "serving",
            "sim",
            "spec",
            "tensor",
            "tokentree",
            "workloads",
        ],
    ),
];

/// Method names that collide with std collection/iterator/sync APIs.
/// Unknown-receiver resolution skips these: a bare `.push(…)` is almost
/// always `Vec::push`, and edging it to every workspace method named
/// `push` floods the graph with upward nonsense. Precise forms —
/// `self.push()`, `Type::push()` — still resolve; a workspace method
/// that must be tracked through an untyped receiver should simply not
/// shadow a std name.
const STD_COLLIDING_METHODS: &[&str] = &[
    "push", "pop", "insert", "remove", "clear", "get", "len", "is_empty", "clone", "extend",
    "iter", "iter_mut", "next", "last", "first", "contains", "sum", "fold", "map", "filter",
    "take", "spawn", "join", "send", "recv", "lock", "read", "write", "split", "swap", "sort",
    "min", "max", "abs", "sqrt", "into", "from", "new", "default", "drain", "to_vec", "as_ref",
    "as_mut", "unwrap", "expect", "collect", "add",
];

/// Whether layering permits a call from `caller`'s crate into
/// `callee`'s. Crates not in the table (fixtures, xtask) carry no
/// layering information and allow everything.
fn crate_can_call(caller: &str, callee: &str) -> bool {
    if caller == callee {
        return true;
    }
    match CRATE_DEPS.iter().find(|(c, _)| *c == caller) {
        Some((_, deps)) => deps.contains(&callee),
        None => true,
    }
}

/// Extracts the crate directory name from a source path:
/// `crates/spec/src/engine.rs` → `spec`. Absolute paths work too (the
/// search is for a `crates/` component). Files outside `crates/` (shims,
/// fixtures given verbatim) get the synthetic crate `"_"`.
pub fn crate_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/').peekable();
    while let Some(p) = parts.next() {
        if p == "crates" {
            if let Some(dir) = parts.peek() {
                return (*dir).to_string();
            }
        }
    }
    "_".to_string()
}

/// Maps a `use`d crate identifier to a crate directory name:
/// `specinfer_model` → `model`, `crate` → the current crate.
fn crate_ident_to_dir(seg: &str, current: &str) -> Option<String> {
    if seg == "crate" {
        return Some(current.to_string());
    }
    let s = seg.replace('-', "_");
    if let Some(rest) = s.strip_prefix("specinfer_") {
        return Some(rest.to_string());
    }
    None
}

/// Module path of a file inside its crate: `src/engine.rs` → `[engine]`,
/// `src/lib.rs`/`src/main.rs` → `[]`, `src/sub/mod.rs` → `[sub]`,
/// `tests/foo.rs` → `[tests, foo]`.
fn module_of(path: &str) -> Vec<String> {
    let norm = path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    let anchor = parts
        .iter()
        .position(|p| *p == "src" || *p == "tests" || *p == "benches")
        .map(|i| if parts[i] == "src" { i + 1 } else { i })
        .unwrap_or(parts.len().saturating_sub(1));
    let mut out = Vec::new();
    for (i, p) in parts.iter().enumerate().skip(anchor) {
        let is_last = i + 1 == parts.len();
        if is_last {
            let stem = p.strip_suffix(".rs").unwrap_or(p);
            if stem != "lib" && stem != "main" && stem != "mod" {
                out.push(stem.to_string());
            }
        } else {
            out.push((*p).to_string());
        }
    }
    out
}

/// Builds the call graph from parsed files. Shim files and test-only
/// functions are excluded at node level.
pub fn build(files: &[ParsedFile]) -> CallGraph {
    let mut g = CallGraph::default();

    // Per-file use maps: alias → full segments.
    let mut use_maps: HashMap<String, Vec<(String, Vec<String>)>> = HashMap::new();
    for f in files {
        if is_shim(&f.path) {
            continue;
        }
        let entry = use_maps.entry(f.path.clone()).or_default();
        for u in &f.uses {
            entry.push((u.alias.clone(), u.segments.clone()));
        }
        let krate = crate_of(&f.path);
        let fmod = module_of(&f.path);
        for d in &f.fns {
            if d.in_test {
                continue;
            }
            let mut module = fmod.clone();
            module.extend(d.modules.iter().cloned());
            g.fns.push(FnNode {
                path: f.path.clone(),
                krate: krate.clone(),
                module,
                owner: d.owner.clone(),
                name: d.name.clone(),
                line: d.line,
                sig: d.sig.clone(),
                in_test: d.in_test,
                facts: d.facts.clone(),
            });
        }
    }
    g.edges = vec![Vec::new(); g.fns.len()];

    // Indexes.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, n) in g.fns.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(i);
        if let Some(o) = &n.owner {
            by_owner_name
                .entry((o.as_str(), n.name.as_str()))
                .or_default()
                .push(i);
        }
    }

    for caller in 0..g.fns.len() {
        let node = g.fns[caller].clone();
        let uses = use_maps.get(&node.path).cloned().unwrap_or_default();
        let mut seen: Vec<usize> = Vec::new();
        for fact in &node.facts {
            let (targets, line, in_loop, certain) = match fact {
                Fact::Call {
                    path,
                    line,
                    in_loop,
                } => (
                    resolve_path_call(&g, &by_name, &by_owner_name, &node, &uses, path),
                    *line,
                    *in_loop,
                    true,
                ),
                Fact::Method {
                    name,
                    recv,
                    line,
                    in_loop,
                    ..
                } => {
                    let (targets, certain) =
                        resolve_method_call(&by_name, &by_owner_name, &g, &node, name, recv);
                    (targets, *line, *in_loop, certain)
                }
                _ => continue,
            };
            for t in targets {
                if t == caller {
                    continue;
                }
                if seen.contains(&t) {
                    // A certain resolution upgrades an earlier
                    // over-approximated edge to the same callee.
                    if certain {
                        if let Some(e) = g.edges[caller].iter_mut().find(|e| e.callee == t) {
                            e.certain = true;
                        }
                    }
                    continue;
                }
                seen.push(t);
                g.edges[caller].push(Edge {
                    callee: t,
                    line,
                    in_loop,
                    certain,
                });
            }
        }
    }
    g
}

fn is_shim(path: &str) -> bool {
    let norm = path.replace('\\', "/");
    norm.split('/').any(|p| p == "shims")
}

/// Resolves a path call `a::b::f(…)` to candidate node indexes.
fn resolve_path_call(
    g: &CallGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_owner_name: &BTreeMap<(&str, &str), Vec<usize>>,
    node: &FnNode,
    uses: &[(String, Vec<String>)],
    path: &[String],
) -> Vec<usize> {
    if path.is_empty() {
        return Vec::new();
    }
    // Expand a leading alias through the use map.
    let mut full: Vec<String> = path.to_vec();
    if let Some((_, segs)) = uses.iter().find(|(a, _)| a == &full[0]) {
        let mut v = segs.clone();
        v.extend_from_slice(&full[1..]);
        full = v;
    }
    let name = full.last().cloned().unwrap_or_default();
    let quals = &full[..full.len() - 1];

    if let Some(q) = quals.last() {
        // `Type::method` / `Self::method` — owner match.
        let type_qual = q.chars().next().is_some_and(|c| c.is_uppercase());
        if q == "Self" {
            if let Some(o) = &node.owner {
                if let Some(v) = by_owner_name.get(&(o.as_str(), name.as_str())) {
                    return filtered(g, node, v);
                }
            }
            return Vec::new();
        }
        if type_qual {
            return by_owner_name
                .get(&(q.as_str(), name.as_str()))
                .map(|v| filtered(g, node, v))
                .unwrap_or_default();
        }
    }

    // Module-qualified or bare free-fn call.
    let mut cands: Vec<usize> = by_name
        .get(name.as_str())
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&i| g.fns[i].owner.is_none() && !g.fns[i].in_test)
                .collect()
        })
        .unwrap_or_default();
    if cands.is_empty() {
        return cands;
    }

    if quals.is_empty() {
        // Bare call: same module in same file, else same file, else
        // same crate. First non-empty tier wins.
        let same_mod: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| g.fns[i].path == node.path && g.fns[i].module == node.module)
            .collect();
        if !same_mod.is_empty() {
            return same_mod;
        }
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| g.fns[i].path == node.path)
            .collect();
        if !same_file.is_empty() {
            return same_file;
        }
        cands.retain(|&i| g.fns[i].krate == node.krate);
        return cands;
    }

    // Qualified: normalize the qualifier into (crate, module-segments)
    // and require a match.
    let mut want_crate: Option<String> = None;
    let mut mod_segs: Vec<String> = Vec::new();
    for (i, q) in quals.iter().enumerate() {
        if i == 0 {
            if let Some(dir) = crate_ident_to_dir(q, &node.krate) {
                want_crate = Some(dir);
                continue;
            }
            if q == "self" {
                want_crate = Some(node.krate.clone());
                mod_segs = node.module.clone();
                continue;
            }
            if q == "super" {
                want_crate = Some(node.krate.clone());
                mod_segs = node.module.clone();
                mod_segs.pop();
                continue;
            }
        }
        mod_segs.push(q.clone());
    }
    cands.retain(|&i| {
        let n = &g.fns[i];
        if let Some(wc) = &want_crate {
            if &n.krate != wc {
                return false;
            }
        }
        // The callee's module path must end with the qualifier's module
        // segments (suffix match tolerates unresolved prefixes).
        if mod_segs.is_empty() {
            true
        } else {
            n.module.len() >= mod_segs.len() && n.module.ends_with(&mod_segs[..])
        }
    });
    cands
}

/// Resolves `recv.method(…)`. `self.method()` binds to the enclosing
/// impl type (a *certain* edge); everything else over-approximates
/// across all owners (uncertain edges).
fn resolve_method_call(
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_owner_name: &BTreeMap<(&str, &str), Vec<usize>>,
    g: &CallGraph,
    node: &FnNode,
    name: &str,
    recv: &[String],
) -> (Vec<usize>, bool) {
    if recv == ["self"] {
        if let Some(o) = &node.owner {
            if let Some(v) = by_owner_name.get(&(o.as_str(), name)) {
                return (filtered(g, node, v), true);
            }
        }
        return (Vec::new(), true);
    }
    if STD_COLLIDING_METHODS.contains(&name) {
        return (Vec::new(), false);
    }
    let targets = by_name
        .get(name)
        .map(|v| {
            v.iter()
                .copied()
                .filter(|&i| {
                    g.fns[i].owner.is_some()
                        && !g.fns[i].in_test
                        && crate_can_call(&node.krate, &g.fns[i].krate)
                })
                .collect()
        })
        .unwrap_or_default();
    (targets, false)
}

fn filtered(g: &CallGraph, node: &FnNode, v: &[usize]) -> Vec<usize> {
    v.iter()
        .copied()
        .filter(|&i| !g.fns[i].in_test && crate_can_call(&node.krate, &g.fns[i].krate))
        .collect()
}

impl CallGraph {
    /// Finds a node by (path-suffix, name). Used to locate rule entry
    /// points and in tests.
    pub fn find(&self, path_suffix: &str, name: &str) -> Option<usize> {
        self.fns
            .iter()
            .position(|n| n.name == name && n.path.ends_with(path_suffix))
    }

    /// All nodes with a given name (strict-mode entry matching).
    pub fn find_all_named(&self, name: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| self.fns[i].name == name)
            .collect()
    }

    /// Whether `caller` has an edge to `callee`.
    pub fn has_edge(&self, caller: usize, callee: usize) -> bool {
        self.edges[caller].iter().any(|e| e.callee == callee)
    }

    /// BFS from `starts`; returns, per reached node, the (parent, line)
    /// it was first discovered through. Start nodes map to themselves.
    pub fn reach_with_parents(&self, starts: &[usize]) -> HashMap<usize, (usize, usize)> {
        let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut q = VecDeque::new();
        for &s in starts {
            if parent.contains_key(&s) {
                continue;
            }
            parent.insert(s, (s, self.fns[s].line));
            q.push_back(s);
        }
        while let Some(u) = q.pop_front() {
            // Deterministic order: edges are stored in source order.
            for e in &self.edges[u] {
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(e.callee) {
                    slot.insert((u, e.line));
                    q.push_back(e.callee);
                }
            }
        }
        parent
    }

    /// Reconstructs the discovery path `entry → … → target` as labels.
    pub fn path_to(&self, parents: &HashMap<usize, (usize, usize)>, target: usize) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&(p, _)) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain.into_iter().map(|i| self.fns[i].label()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| crate::parse::parse_file(&scan_source(p, s, true)))
            .collect();
        for p in &parsed {
            assert!(p.errors.is_empty(), "{}: {:?}", p.path, p.errors);
        }
        build(&parsed)
    }

    #[test]
    fn direct_call_edge_same_file() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn top() { helper(); }\nfn helper() {}\n",
        )]);
        let top = g.find("lib.rs", "top").expect("top");
        let helper = g.find("lib.rs", "helper").expect("helper");
        assert!(g.has_edge(top, helper));
        assert!(!g.has_edge(helper, top));
    }

    #[test]
    fn method_call_edge_via_self() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S {\n    fn outer(&self) { self.inner(); }\n    fn inner(&self) {}\n}\n",
        )]);
        let outer = g.find("lib.rs", "outer").expect("outer");
        let inner = g.find("lib.rs", "inner").expect("inner");
        assert!(g.has_edge(outer, inner));
    }

    #[test]
    fn self_method_does_not_leak_to_other_types() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct S;\nstruct T;\nimpl S {\n    fn outer(&self) { self.m(); }\n    fn m(&self) {}\n}\nimpl T {\n    fn m(&self) {}\n}\n",
        )]);
        let outer = g.find("lib.rs", "outer").expect("outer");
        let sm = g
            .fns
            .iter()
            .position(|n| n.name == "m" && n.owner.as_deref() == Some("S"))
            .expect("S::m");
        let tm = g
            .fns
            .iter()
            .position(|n| n.name == "m" && n.owner.as_deref() == Some("T"))
            .expect("T::m");
        assert!(g.has_edge(outer, sm));
        assert!(!g.has_edge(outer, tm));
    }

    #[test]
    fn unknown_receiver_method_over_approximates() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "struct S;\nimpl S { fn m(&self) {} }\nfn free(x: &S) { x.m(); }\n",
        )]);
        let free = g.find("lib.rs", "free").expect("free");
        let m = g.find("lib.rs", "m").expect("m");
        assert!(g.has_edge(free, m));
    }

    #[test]
    fn cross_module_use_resolution() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use crate::util::helper;\npub fn top() { helper(); }\n",
            ),
            ("crates/a/src/util.rs", "pub fn helper() {}\n"),
        ]);
        let top = g.find("lib.rs", "top").expect("top");
        let helper = g.find("util.rs", "helper").expect("helper");
        assert!(g.has_edge(top, helper));
    }

    #[test]
    fn cross_crate_qualified_resolution() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use specinfer_b::sampler;\npub fn top() { sampler::pick(); specinfer_b::sampler::pick2(); }\n",
            ),
            (
                "crates/b/src/sampler.rs",
                "pub fn pick() {}\npub fn pick2() {}\n",
            ),
        ]);
        let top = g.find("lib.rs", "top").expect("top");
        let pick = g.find("sampler.rs", "pick").expect("pick");
        let pick2 = g.find("sampler.rs", "pick2").expect("pick2");
        assert!(g.has_edge(top, pick), "use-aliased module call");
        assert!(g.has_edge(top, pick2), "fully qualified call");
    }

    #[test]
    fn type_qualified_and_use_imported_assoc_fn() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "use specinfer_b::Widget;\npub fn top() { let w = Widget::build(); }\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub struct Widget;\nimpl Widget { pub fn build() -> Widget { Widget } }\n",
            ),
        ]);
        let top = g.find("a/src/lib.rs", "top").expect("top");
        let build = g.find("b/src/lib.rs", "build").expect("build");
        assert!(g.has_edge(top, build));
    }

    #[test]
    fn bare_call_prefers_same_module_over_same_crate() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub fn top() { helper(); }\npub fn helper() { marker_x(); }\nfn marker_x() {}\n",
            ),
            ("crates/a/src/y.rs", "pub fn helper() {}\n"),
        ]);
        let top = g.find("x.rs", "top").expect("top");
        let hx = g.find("x.rs", "helper").expect("x helper");
        let hy = g.find("y.rs", "helper").expect("y helper");
        assert!(g.has_edge(top, hx));
        assert!(!g.has_edge(top, hy), "same-file candidates shadow others");
    }

    #[test]
    fn test_functions_are_not_nodes() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper_t() {}\n}\n",
        )]);
        assert!(g.find("lib.rs", "prod").is_some());
        assert!(g.find("lib.rs", "helper_t").is_none());
    }

    #[test]
    fn shims_are_not_nodes() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn top() { go(); }\n"),
            ("shims/x/src/lib.rs", "pub fn go() {}\n"),
        ]);
        assert!(g.find("shims/x/src/lib.rs", "go").is_none());
    }

    #[test]
    fn bfs_paths_reconstruct_discovery_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let entry = g.find("lib.rs", "entry").expect("entry");
        let leaf = g.find("lib.rs", "leaf").expect("leaf");
        let parents = g.reach_with_parents(&[entry]);
        assert!(parents.contains_key(&leaf));
        assert_eq!(g.path_to(&parents, leaf), vec!["entry", "mid", "leaf"]);
    }

    #[test]
    fn layering_blocks_upward_method_edges() {
        // `model` code calling `.spawn(…)` on a scoped-thread handle must
        // NOT resolve to a `serving` method of the same name: serving is
        // above model in the dependency DAG.
        let g = graph(&[
            (
                "crates/model/src/transformer.rs",
                "struct T;\nimpl T { fn forward(&self, s: &Scope) { s.spawn(); } }\n",
            ),
            (
                "crates/serving/src/daemon.rs",
                "struct D;\nimpl D { fn spawn(&self) {} }\n",
            ),
        ]);
        let fwd = g.find("transformer.rs", "forward").expect("forward");
        let spawn = g.find("daemon.rs", "spawn").expect("spawn");
        assert!(!g.has_edge(fwd, spawn), "upward edge must be filtered");
        // The reverse direction (serving calling down into model) stays.
        let g = graph(&[
            (
                "crates/serving/src/daemon.rs",
                "struct D;\nimpl D { fn run(&self, t: &T) { t.forward(); } }\n",
            ),
            (
                "crates/model/src/transformer.rs",
                "struct T;\nimpl T { fn forward(&self) {} }\n",
            ),
        ]);
        let run = g.find("daemon.rs", "run").expect("run");
        let fwd = g.find("transformer.rs", "forward").expect("forward");
        assert!(g.has_edge(run, fwd));
    }

    #[test]
    fn crate_deps_table_matches_the_manifests() {
        // The layering table is policy; the manifests are truth. Pin
        // them together so the table cannot drift silently.
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .map(std::path::PathBuf::from)
            .expect("crates/ dir");
        for (krate, deps) in CRATE_DEPS {
            let manifest = root.join(krate).join("Cargo.toml");
            let text =
                std::fs::read_to_string(&manifest).unwrap_or_else(|e| panic!("{krate}: {e}"));
            let mut actual: Vec<String> = text
                .lines()
                .filter_map(|l| {
                    let dep = l.trim().strip_prefix("specinfer-")?;
                    let name = dep.split([' ', '.', '=']).next()?;
                    Some(name.to_string())
                })
                .filter(|d| d != krate && d != "xtask")
                .collect();
            actual.sort();
            actual.dedup();
            let mut expected: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
            expected.sort();
            assert_eq!(
                actual, expected,
                "CRATE_DEPS entry for `{krate}` drifted from its Cargo.toml"
            );
        }
    }

    #[test]
    fn module_of_maps_paths() {
        assert_eq!(module_of("crates/a/src/lib.rs"), Vec::<String>::new());
        assert_eq!(module_of("crates/a/src/engine.rs"), vec!["engine"]);
        assert_eq!(module_of("crates/a/src/sub/mod.rs"), vec!["sub"]);
        assert_eq!(module_of("crates/a/tests/smoke.rs"), vec!["tests", "smoke"]);
        assert_eq!(crate_of("crates/spec/src/engine.rs"), "spec");
        assert_eq!(crate_of("/abs/root/crates/model/src/lib.rs"), "model");
    }
}
