//! A lightweight recursive-descent Rust parser for semantic lint rules.
//!
//! [`crate::scan`] gives the rules comment/string/`cfg(test)`-aware
//! *lines*; this module turns those lines into just enough structure for
//! graph and dataflow analysis: a token stream, the item tree (modules,
//! impls, fns, `use` declarations), and per-function **facts** — calls,
//! method calls, macro invocations, slice indexing, loops and their
//! accumulation patterns. It is deliberately not a full Rust grammar
//! (`syn` would drag a dependency across the shim boundary the lint
//! polices): expression structure beyond the facts is skipped with
//! balanced-delimiter scanning, which is exactly as much as the
//! call-graph rules in [`crate::semantic`] need.
//!
//! Invariants the parser relies on (and the proptest suite pins):
//! the scanner blanked string/char contents and stripped comments, so
//! every delimiter left in `ScannedLine::code` is real code structure.

use crate::scan::ScannedFile;

/// Token classes. Punctuation is kept as text; only the handful of
/// multi-character operators the rules care about are joined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (including suffixed forms like `0.0f32`).
    Number,
    /// A (blanked) string literal.
    Str,
    /// A lifetime (`'a`) or blanked char literal.
    Tick,
    /// Operator / delimiter text.
    Punct,
}

/// One lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// Whether the token sits in a `#[cfg(test)]` region / test file.
    pub in_test: bool,
}

/// Multi-character operators joined into single tokens. Order matters:
/// longest first. `<`/`>` are intentionally left single so generic
/// angle tracking stays local.
const JOINED: &[&str] = &[
    "..=", "...", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "&&", "||", "==", "!=",
    "<=", ">=",
];

/// Lexes a scanned file into a token stream. The concatenation of the
/// returned tokens' text equals the scanned `code` with whitespace
/// removed — the round-trip property the proptest suite checks.
pub fn lex(file: &ScannedFile) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let n = chars.len();
        let mut k = 0;
        while k < n {
            let c = chars[k];
            if c.is_whitespace() {
                k += 1;
                continue;
            }
            let (kind, text, used) = if c.is_alphabetic() || c == '_' {
                let mut j = k;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                (TokKind::Ident, chars[k..j].iter().collect(), j - k)
            } else if c.is_ascii_digit() {
                // Numbers may embed `.`, type suffixes and exponent signs
                // (`1.5e-3`, `0xff`, `0.0f32`). A trailing `.` belongs to
                // the number only if a digit follows (so `0..n` stays a
                // range).
                let mut j = k;
                while j < n {
                    let d = chars[j];
                    let continues = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && j + 1 < n && chars[j + 1].is_ascii_digit())
                        || ((d == '+' || d == '-')
                            && j > k
                            && (chars[j - 1] == 'e' || chars[j - 1] == 'E'));
                    if !continues {
                        break;
                    }
                    j += 1;
                }
                (TokKind::Number, chars[k..j].iter().collect(), j - k)
            } else if c == '"' {
                // Blanked string literal: delimiters survive scanning, so
                // the closing quote is the next `"`.
                let mut j = k + 1;
                while j < n && chars[j] != '"' {
                    j += 1;
                }
                let j = (j + 1).min(n);
                (TokKind::Str, chars[k..j].iter().collect(), j - k)
            } else if c == '\'' {
                // `''` is a blanked char literal; `'ident` a lifetime.
                if k + 1 < n && chars[k + 1] == '\'' {
                    (TokKind::Tick, "''".into(), 2)
                } else {
                    let mut j = k + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    (TokKind::Tick, chars[k..j].iter().collect(), j - k)
                }
            } else {
                let rest: String = chars[k..n.min(k + 3)].iter().collect();
                match JOINED.iter().find(|op| rest.starts_with(**op)) {
                    Some(op) => (TokKind::Punct, (*op).to_string(), op.len()),
                    None => (TokKind::Punct, c.to_string(), 1),
                }
            };
            toks.push(Tok {
                kind,
                text,
                line: i + 1,
                in_test: line.in_test,
            });
            k += used;
        }
    }
    toks
}

/// A `use` declaration leaf: `alias` names `segments` in this file.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name the import is visible as (last segment, or the `as` name).
    pub alias: String,
    /// Full path segments (`crate`/`self`/`super` unresolved).
    pub segments: Vec<String>,
}

/// One fact extracted from a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Fact {
    /// A path call `a::b::f(…)`. `path` holds every segment incl. the
    /// callee name.
    Call {
        path: Vec<String>,
        line: usize,
        in_loop: bool,
    },
    /// A method call `recv.name(…)`. `recv` is the trailing identifier
    /// chain of the receiver (`["self", "cache"]` for
    /// `self.cache.len()`), empty when the receiver is a compound
    /// expression. `zero_args` is true for an empty argument list.
    Method {
        name: String,
        recv: Vec<String>,
        zero_args: bool,
        line: usize,
        in_loop: bool,
    },
    /// A macro invocation `name!(…)`.
    Macro {
        name: String,
        line: usize,
        in_loop: bool,
    },
    /// A slice/array index expression `expr[…]`.
    Index { line: usize, in_loop: bool },
    /// A `for`/`while` loop that iterates in non-ascending order
    /// (`.rev()` / `.step_by(…)` in its header) while its body
    /// accumulates with a compound assignment.
    NonAscendingAccum { line: usize },
    /// A closure expression `|args| body` / `move |args| body`. Records
    /// what the body *captures* from the enclosing scope (identifiers
    /// used in the body that are neither closure parameters nor local
    /// bindings of the body), the capture mode, and the innermost call
    /// the closure is an argument of — enough for [`crate::escape`] to
    /// tell thread-local values from shared ones at spawn sites, and
    /// for [`crate::race`] to build a per-closure CFG from the body
    /// tokens ([`crate::cfg`] absorbs closures into single statements).
    Closure {
        line: usize,
        /// Last source line of the closure body.
        end_line: usize,
        in_loop: bool,
        /// True for `move |…|` closures: captures are taken by value.
        /// Non-move closures capture by reference (Rust's per-capture
        /// inference is approximated at closure granularity).
        by_move: bool,
        /// Closure parameter bindings, in declaration order.
        params: Vec<String>,
        /// Captured identifiers, sorted and deduplicated.
        captures: Vec<String>,
        /// Callee name of the innermost call this closure is an
        /// argument of (`spawn` for `scope.spawn(move || …)`), if any.
        enclosing_call: Option<String>,
        /// Receiver chain / path prefix of that call (`scope` for
        /// `scope.spawn`, `thread` for `thread::scope`); empty when
        /// the call is unqualified or there is no enclosing call.
        enclosing_recv: String,
        /// The body token stream, exclusive of the outer braces for
        /// block bodies.
        body: Vec<Tok>,
    },
}

impl Fact {
    /// The source line of the fact.
    pub fn line(&self) -> usize {
        match self {
            Fact::Call { line, .. }
            | Fact::Method { line, .. }
            | Fact::Macro { line, .. }
            | Fact::Index { line, .. }
            | Fact::NonAscendingAccum { line }
            | Fact::Closure { line, .. } => *line,
        }
    }
}

/// A parsed function (free fn, inherent/trait method, or default trait
/// method).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// The `impl`/`trait` type the fn belongs to, if any.
    pub owner: Option<String>,
    /// Inline `mod` path inside the file (excluding the file module).
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The raw source line of the signature (for diagnostics/allowlist).
    pub sig: String,
    /// Whether the fn sits in test-only code.
    pub in_test: bool,
    pub facts: Vec<Fact>,
    /// Parameter binding names in declaration order (`self` included;
    /// destructured patterns contribute their leaf bindings).
    pub params: Vec<String>,
    /// The body's token stream, exclusive of the outer braces. Empty for
    /// bodiless trait declarations. [`crate::cfg`] builds CFGs from this.
    pub body: Vec<Tok>,
}

/// A parse diagnostic. The workspace must parse diagnostic-free (pinned
/// by a test); diagnostics on arbitrary input are recoverable — the
/// parser skips ahead instead of aborting.
#[derive(Debug, Clone)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

/// A module-level `static` item: the escape analysis seeds its shared
/// roots from these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDef {
    pub name: String,
    /// 1-based line of the `static` keyword.
    pub line: usize,
    /// Whitespace-joined type text between `:` and `=`/`;`.
    pub ty: String,
    pub in_test: bool,
}

/// A fully parsed source file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    pub path: String,
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnDef>,
    /// Module-level `static` items (function-body statics are not
    /// recorded; the workspace keeps those behind `OnceLock`).
    pub statics: Vec<StaticDef>,
    pub errors: Vec<ParseError>,
    /// Raw source lines, for finding snippets.
    pub raw_lines: Vec<String>,
}

impl ParsedFile {
    /// The raw source text of a 1-based line (empty when out of range).
    pub fn raw_line(&self, line: usize) -> String {
        self.raw_lines
            .get(line.saturating_sub(1))
            .cloned()
            .unwrap_or_default()
    }
}

/// Keywords that look like calls when followed by `(` but are not.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "dyn"
            | "impl"
            | "fn"
            | "where"
            | "unsafe"
            | "await"
    )
}

/// Extracts parameter binding names from a parameter-list token slice
/// (including the outer parens). `self` receivers yield `"self"`; a
/// plain binding is an identifier directly followed by `:` at paren
/// depth 1 outside generic angles and preceded (modulo `mut`/`ref`) by
/// `(` or `,`. Destructured patterns are skipped — missing a binding
/// only under-approximates downstream taint, never over-reports.
fn param_names(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut angle = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "<" => angle += 1,
            ">" => angle = angle.saturating_sub(1),
            _ => {}
        }
        if depth != 1 || angle != 0 || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "self" && out.is_empty() {
            out.push("self".to_string());
            continue;
        }
        let next_is_colon = toks.get(i + 1).is_some_and(|n| n.text == ":");
        if !next_is_colon || is_expr_keyword(&t.text) {
            continue;
        }
        let mut j = i;
        while j > 0 && matches!(toks[j - 1].text.as_str(), "mut" | "ref") {
            j -= 1;
        }
        if j > 0 && matches!(toks[j - 1].text.as_str(), "(" | ",") {
            out.push(t.text.clone());
        }
    }
    out
}

/// Keywords and literal-like identifiers that never name a binding.
fn is_non_binding_ident(s: &str) -> bool {
    is_expr_keyword(s)
        || matches!(
            s,
            "true"
                | "false"
                | "self"
                | "Self"
                | "crate"
                | "super"
                | "const"
                | "static"
                | "pub"
                | "use"
                | "struct"
                | "enum"
                | "trait"
                | "mod"
                | "type"
                | "async"
                | "_"
        )
}

/// Whether a token can end an expression (slice-local mirror of
/// `Parser::tok_ends_expr`, used when scanning closure bodies for
/// nested closure parameters).
fn ends_expr(t: &Tok) -> bool {
    match t.kind {
        TokKind::Ident => !is_expr_keyword(&t.text) && t.text != "as",
        TokKind::Number | TokKind::Str => true,
        TokKind::Tick => false,
        TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
    }
}

/// Identifiers a closure body reads from its enclosing scope: used
/// idents minus the closure's own parameters and the bindings the body
/// introduces (`let` patterns, `for` bindings, match-arm patterns,
/// nested-closure parameters). Heuristic mirror of [`crate::cfg`]'s
/// use detection: uppercase idents (types, consts, statics), path
/// segments, callee/macro/field names and struct-literal field labels
/// are excluded. Over-collecting *locals* only under-reports captures,
/// which downstream analyses treat as thread-local — the conservative
/// direction for false-positive avoidance.
fn collect_captures(toks: &[Tok], params: &[String]) -> Vec<String> {
    use std::collections::BTreeSet;
    let mut locals: BTreeSet<String> = params.iter().cloned().collect();

    // Pass 1: bindings introduced inside the body.
    let mut seg_start = 0usize; // start of the current `{`/`,`/`;` segment
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "let" => {
                // Pattern idents up to `=`/`;` (type ascriptions masked).
                let mut j = i + 1;
                let mut depth = 0usize;
                let mut in_type = false;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "=" | ";" if depth == 0 => break,
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ":" => in_type = true,
                        "," => in_type = false,
                        s => {
                            if toks[j].kind == TokKind::Ident
                                && !in_type
                                && !is_non_binding_ident(s)
                                && !s.starts_with(char::is_uppercase)
                            {
                                locals.insert(s.to_string());
                            }
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            "for" => {
                // `for pat in …` binds the pattern leaves.
                let mut j = i + 1;
                while j < toks.len() && toks[j].text != "in" && toks[j].text != "{" {
                    let s = toks[j].text.as_str();
                    if toks[j].kind == TokKind::Ident
                        && !is_non_binding_ident(s)
                        && !s.starts_with(char::is_uppercase)
                    {
                        locals.insert(s.to_string());
                    }
                    j += 1;
                }
                i = j.max(i + 1);
            }
            "|" if i == 0 || !ends_expr(&toks[i - 1]) => {
                // Nested closure: its parameters bind locally.
                let mut j = i + 1;
                let mut depth = 0usize;
                let mut in_type = false;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "|" if depth == 0 => break,
                        "(" | "[" => depth += 1,
                        ")" | "]" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        "{" | "}" | ";" | "=>" => break,
                        ":" if depth == 0 => in_type = true,
                        "," if depth == 0 => in_type = false,
                        s => {
                            if toks[j].kind == TokKind::Ident
                                && !in_type
                                && !is_non_binding_ident(s)
                                && !s.starts_with(char::is_uppercase)
                            {
                                locals.insert(s.to_string());
                            }
                        }
                    }
                    j += 1;
                }
                i = j.max(i + 1);
            }
            "=>" => {
                // Match arm: idents between the segment start and the
                // arrow are pattern bindings (guard uses get swept in —
                // that only under-reports captures).
                for t in &toks[seg_start..i] {
                    let s = t.text.as_str();
                    if t.kind == TokKind::Ident
                        && !is_non_binding_ident(s)
                        && !s.starts_with(char::is_uppercase)
                    {
                        locals.insert(s.to_string());
                    }
                }
                i += 1;
            }
            "{" | "}" | "," | ";" => {
                seg_start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }

    // Pass 2: uses not bound locally are captures.
    let mut caps = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        if is_non_binding_ident(s) || s.starts_with(char::is_uppercase) || s.starts_with('_') {
            continue;
        }
        if locals.contains(s) {
            continue;
        }
        let next = toks.get(i + 1).map_or("", |n| n.text.as_str());
        // Calls, macros, path prefixes, struct-literal field labels and
        // type ascriptions are not value reads of a capture.
        if next == "(" || next == "!" || next == "::" || next == ":" {
            continue;
        }
        let prev = if i == 0 {
            ""
        } else {
            toks[i - 1].text.as_str()
        };
        if prev == "." || prev == "::" || prev == "fn" || prev == "'" || prev == "as" {
            continue;
        }
        caps.insert(s.to_string());
    }
    caps.into_iter().collect()
}

/// Parses a scanned file. Never panics; malformed regions surface as
/// [`ParseError`]s and are skipped.
pub fn parse_file(file: &ScannedFile) -> ParsedFile {
    let toks = lex(file);
    let mut p = Parser {
        toks,
        pos: 0,
        raw_lines: file.lines.iter().map(|l| l.raw.clone()).collect(),
        out: ParsedFile {
            path: file.path.clone(),
            uses: Vec::new(),
            fns: Vec::new(),
            statics: Vec::new(),
            errors: Vec::new(),
            raw_lines: file.lines.iter().map(|l| l.raw.clone()).collect(),
        },
        call_ctx: Vec::new(),
    };
    let mut modules = Vec::new();
    p.items(&mut modules, None, usize::MAX);
    p.out
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    raw_lines: Vec<String>,
    out: ParsedFile,
    /// Stack of `(callee, receiver/path prefix)` for the call argument
    /// groups the cursor is inside — closures read the top entry to
    /// learn which call they are passed to.
    call_ctx: Vec<(String, String)>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_text(&self) -> &str {
        self.toks.get(self.pos).map_or("", |t| t.text.as_str())
    }

    fn peek_at(&self, off: usize) -> &str {
        self.toks
            .get(self.pos + off)
            .map_or("", |t| t.text.as_str())
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek_text() == text {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn cur_line(&self) -> usize {
        self.peek().map_or(self.raw_lines.len().max(1), |t| t.line)
    }

    fn raw_line(&self, line: usize) -> String {
        self.raw_lines
            .get(line.saturating_sub(1))
            .cloned()
            .unwrap_or_default()
    }

    fn error(&mut self, message: String) {
        let line = self.cur_line();
        self.out.errors.push(ParseError { line, message });
    }

    /// Skips one balanced group. The cursor must sit ON the opener.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat(open) {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(t) if t.text == open => depth += 1,
                Some(t) if t.text == close => depth -= 1,
                Some(_) => {}
                None => return,
            }
        }
    }

    /// Skips a generics group `<…>`, tolerating nested angles. The
    /// cursor must sit on `<`.
    fn skip_angles(&mut self) {
        if !self.eat("<") {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some(t) if t.text == "<" => depth += 1,
                Some(t) if t.text == ">" => depth -= 1,
                // `(`/`[` groups inside generics (fn pointers, arrays).
                Some(t) if t.text == "(" => {
                    self.pos -= 1;
                    self.skip_balanced("(", ")");
                }
                Some(t) if t.text == "[" => {
                    self.pos -= 1;
                    self.skip_balanced("[", "]");
                }
                Some(_) => {}
                None => return,
            }
        }
    }

    /// Skips to the next `;` at top delimiter depth (consuming it), or
    /// stops before an unmatched `}`.
    fn skip_to_semi(&mut self) {
        loop {
            match self.peek_text() {
                "" => return,
                ";" => {
                    self.pos += 1;
                    return;
                }
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "{" => self.skip_balanced("{", "}"),
                "}" => return,
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parses items until `limit` tokens are consumed or an unmatched
    /// `}` / EOF is hit. `owner` is the enclosing impl/trait type.
    fn items(&mut self, modules: &mut Vec<String>, owner: Option<&str>, limit: usize) {
        let mut consumed = 0usize;
        while consumed < limit {
            let before = self.pos;
            match self.peek_text() {
                "" | "}" => return,
                "#" => {
                    // Attribute (incl. `#![…]`).
                    self.pos += 1;
                    self.eat("!");
                    if self.peek_text() == "[" {
                        self.skip_balanced("[", "]");
                    }
                }
                "pub" => {
                    self.pos += 1;
                    if self.peek_text() == "(" {
                        self.skip_balanced("(", ")");
                    }
                }
                "use" => self.use_decl(),
                "mod" => {
                    self.pos += 1;
                    let name = match self.peek() {
                        Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                        _ => {
                            self.error("expected module name after `mod`".into());
                            self.skip_to_semi();
                            continue;
                        }
                    };
                    self.pos += 1;
                    if self.eat("{") {
                        modules.push(name);
                        self.items(modules, None, usize::MAX);
                        modules.pop();
                        if !self.eat("}") {
                            self.error("unclosed module block".into());
                        }
                    } else {
                        self.eat(";");
                    }
                }
                "impl" => self.impl_block(modules),
                "trait" => {
                    self.pos += 1;
                    self.eat("unsafe");
                    let name = self.peek_text().to_string();
                    self.pos += 1;
                    if self.peek_text() == "<" {
                        self.skip_angles();
                    }
                    // Supertraits / where clause up to the body.
                    while !matches!(self.peek_text(), "{" | ";" | "") {
                        if self.peek_text() == "<" {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                    if self.eat("{") {
                        self.items(modules, Some(&name), usize::MAX);
                        if !self.eat("}") {
                            self.error("unclosed trait block".into());
                        }
                    } else {
                        self.eat(";");
                    }
                }
                "fn" => self.fn_item(modules, owner),
                "unsafe" | "const" | "async" | "extern" | "default" => {
                    // Qualifiers before `fn` (or `extern` string ABI, or a
                    // `const NAME: …` item — disambiguated below).
                    if self.peek_text() == "const" && self.peek_at(1) != "fn" {
                        self.skip_to_semi(); // const item
                    } else if self.peek_text() == "extern" && self.peek_at(1) != "fn" {
                        self.pos += 1; // `extern crate x;` or ABI string
                        if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                            self.pos += 1;
                        } else {
                            self.skip_to_semi();
                        }
                    } else {
                        self.pos += 1;
                    }
                }
                "static" => self.static_item(),
                "type" => self.skip_to_semi(),
                "struct" | "enum" | "union" => {
                    self.pos += 1;
                    self.pos += 1; // name
                    if self.peek_text() == "<" {
                        self.skip_angles();
                    }
                    // Tuple struct `(…);`, unit `;`, or braced body.
                    loop {
                        match self.peek_text() {
                            "(" => self.skip_balanced("(", ")"),
                            "{" => {
                                self.skip_balanced("{", "}");
                                break;
                            }
                            ";" => {
                                self.pos += 1;
                                break;
                            }
                            "<" => self.skip_angles(),
                            "" | "}" => break,
                            _ => {
                                self.pos += 1;
                            }
                        }
                    }
                }
                "macro_rules" => {
                    self.pos += 1;
                    self.eat("!");
                    self.pos += 1; // name
                    if self.peek_text() == "{" {
                        self.skip_balanced("{", "}");
                    } else {
                        self.skip_to_semi();
                    }
                }
                other => {
                    // A macro invocation at item level (`thread_local! { … }`,
                    // `proptest::proptest! { … }`): skip the (possibly
                    // path-qualified) macro name, then the delimited body.
                    let mut look = 0usize;
                    while self.peek().is_some()
                        && self
                            .toks
                            .get(self.pos + look)
                            .is_some_and(|t| t.kind == TokKind::Ident)
                        && self.peek_at(look + 1) == "::"
                    {
                        look += 2;
                    }
                    let is_macro = self
                        .toks
                        .get(self.pos + look)
                        .is_some_and(|t| t.kind == TokKind::Ident)
                        && self.peek_at(look + 1) == "!";
                    if is_macro {
                        self.pos += look + 2;
                        match self.peek_text() {
                            "{" | "(" | "[" => {
                                let (open, close) = match self.peek_text() {
                                    "{" => ("{", "}"),
                                    "(" => ("(", ")"),
                                    _ => ("[", "]"),
                                };
                                self.skip_balanced(open, close);
                                self.eat(";");
                            }
                            _ => self.skip_to_semi(),
                        }
                    } else {
                        self.error(format!("unexpected item token `{other}`"));
                        self.pos += 1;
                    }
                }
            }
            consumed += self.pos.saturating_sub(before).max(1);
            if self.pos == before {
                self.pos += 1; // guarantee progress
            }
        }
    }

    /// Records a module-level `static NAME: Type = …;` item. The type
    /// text lets the escape analysis exempt synchronized wrappers
    /// (`Atomic*`, `OnceLock`, `Mutex`, …) from raw-access pairing.
    fn static_item(&mut self) {
        let line = self.cur_line();
        let in_test = self.peek().is_some_and(|t| t.in_test);
        self.pos += 1; // `static`
        self.eat("mut");
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => {
                self.skip_to_semi();
                return;
            }
        };
        self.pos += 1;
        let mut ty = Vec::new();
        if self.eat(":") {
            loop {
                match self.peek_text() {
                    "=" | ";" | "" | "}" => break,
                    s => {
                        ty.push(s.to_string());
                        self.pos += 1;
                    }
                }
            }
        }
        self.out.statics.push(StaticDef {
            name,
            line,
            ty: ty.join(" "),
            in_test,
        });
        self.skip_to_semi();
    }

    /// Parses a `use` declaration into leaf aliases.
    fn use_decl(&mut self) {
        self.pos += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        self.eat(";");
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        loop {
            match self.peek_text() {
                "{" => {
                    self.pos += 1;
                    loop {
                        self.use_tree(prefix);
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat("}");
                    prefix.truncate(depth_at_entry);
                    return;
                }
                "*" => {
                    self.pos += 1;
                    self.out.uses.push(UseDecl {
                        alias: "*".into(),
                        segments: prefix.clone(),
                    });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                "" | ";" | "," | "}" => {
                    // Path ended: the last segment is the alias.
                    if prefix.len() > depth_at_entry || !prefix.is_empty() {
                        let alias = if self.eat("as") {
                            let a = self.peek_text().to_string();
                            self.pos += 1;
                            a
                        } else {
                            prefix.last().cloned().unwrap_or_default()
                        };
                        if !alias.is_empty() {
                            self.out.uses.push(UseDecl {
                                alias,
                                segments: prefix.clone(),
                            });
                        }
                    }
                    prefix.truncate(depth_at_entry);
                    return;
                }
                "as" => {
                    self.pos += 1;
                    let a = self.peek_text().to_string();
                    self.pos += 1;
                    self.out.uses.push(UseDecl {
                        alias: a,
                        segments: prefix.clone(),
                    });
                    prefix.truncate(depth_at_entry);
                    return;
                }
                "::" => {
                    self.pos += 1;
                }
                _ => {
                    let t = self.peek_text().to_string();
                    prefix.push(t);
                    self.pos += 1;
                }
            }
        }
    }

    /// Parses `impl [Trait for] Type { items }`.
    fn impl_block(&mut self, modules: &mut Vec<String>) {
        self.pos += 1; // `impl`
        if self.peek_text() == "<" {
            self.skip_angles();
        }
        // Collect the head up to `{`, remembering the last type name seen
        // after a `for` (trait impls) or overall (inherent impls).
        let mut owner = String::new();
        let mut after_for = false;
        let mut owner_from_for = String::new();
        loop {
            match self.peek_text() {
                "{" | "" | ";" => break,
                "for" => {
                    after_for = true;
                    self.pos += 1;
                }
                "<" => self.skip_angles(),
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                "::" | "&" | "'" | "dyn" | "mut" => {
                    self.pos += 1;
                }
                "where" => {
                    // Where clause: skip to the body.
                    while !matches!(self.peek_text(), "{" | "") {
                        if self.peek_text() == "<" {
                            self.skip_angles();
                        } else {
                            self.pos += 1;
                        }
                    }
                }
                _ => {
                    if let Some(t) = self.peek() {
                        if t.kind == TokKind::Ident {
                            if after_for {
                                owner_from_for = t.text.clone();
                            } else {
                                owner = t.text.clone();
                            }
                        }
                    }
                    self.pos += 1;
                }
            }
        }
        let owner = if after_for { owner_from_for } else { owner };
        if self.eat("{") {
            let o = if owner.is_empty() {
                None
            } else {
                Some(owner.as_str())
            };
            self.items(modules, o, usize::MAX);
            if !self.eat("}") {
                self.error("unclosed impl block".into());
            }
        } else {
            self.eat(";");
        }
    }

    /// Parses `fn name …` at item level: signature, then the body facts.
    fn fn_item(&mut self, modules: &[String], owner: Option<&str>) {
        let fn_tok_line = self.cur_line();
        let in_test = self.peek().is_some_and(|t| t.in_test);
        self.pos += 1; // `fn`
        let name = match self.peek() {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => {
                self.error("expected function name after `fn`".into());
                return;
            }
        };
        self.pos += 1;
        if self.peek_text() == "<" {
            self.skip_angles();
        }
        let mut params = Vec::new();
        if self.peek_text() == "(" {
            let param_start = self.pos;
            self.skip_balanced("(", ")");
            params = param_names(&self.toks[param_start..self.pos]);
        } else {
            self.error(format!("fn `{name}`: expected parameter list"));
        }
        // Return type / where clause, up to body or `;` (trait decl).
        loop {
            match self.peek_text() {
                "{" | ";" | "" | "}" => break,
                "<" => self.skip_angles(),
                "(" => self.skip_balanced("(", ")"),
                "[" => self.skip_balanced("[", "]"),
                _ => {
                    self.pos += 1;
                }
            }
        }
        let mut def = FnDef {
            name,
            owner: owner.map(str::to_string),
            modules: modules.to_vec(),
            line: fn_tok_line,
            sig: self.raw_line(fn_tok_line),
            in_test,
            facts: Vec::new(),
            params,
            body: Vec::new(),
        };
        if self.eat("{") {
            let body_start = self.pos;
            let mut facts = Vec::new();
            self.body(&mut facts, 0);
            def.body = self.toks[body_start..self.pos].to_vec();
            if !self.eat("}") {
                self.error(format!("fn `{}`: unclosed body", def.name));
            }
            def.facts = facts;
        } else {
            self.eat(";"); // trait method declaration without body
        }
        self.out.fns.push(def);
    }

    /// Whether token `i` can end an indexable expression (so a following
    /// `[` is an index, not an array literal/type or attribute).
    fn tok_ends_expr(&self, i: usize) -> bool {
        match self.toks.get(i) {
            Some(t) => match t.kind {
                TokKind::Ident => !is_expr_keyword(&t.text) && t.text != "as",
                TokKind::Number | TokKind::Str => true,
                TokKind::Tick => false,
                TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
            },
            None => false,
        }
    }

    /// Scans one `{ … }` body (cursor past the opening brace), emitting
    /// facts. `loop_depth` counts enclosing `for`/`while`/`loop` bodies.
    fn body(&mut self, facts: &mut Vec<Fact>, loop_depth: usize) {
        while let Some(t) = self.peek().cloned() {
            match t.text.as_str() {
                "}" => return,
                "{" => {
                    self.pos += 1;
                    self.body(facts, loop_depth);
                    self.eat("}");
                }
                "for" | "while" | "loop" => {
                    self.loop_expr(facts, loop_depth, &t.text);
                }
                "[" => {
                    // Array literal or index: decided by the PREVIOUS
                    // token (callers handle index detection before
                    // descending; reaching `[` here means literal/type).
                    let is_index = self.pos > 0 && self.tok_ends_expr(self.pos - 1);
                    if is_index && !t.in_test {
                        facts.push(Fact::Index {
                            line: t.line,
                            in_loop: loop_depth > 0,
                        });
                    }
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, "]");
                    self.eat("]");
                }
                "(" => {
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, ")");
                    self.eat(")");
                }
                "." => {
                    self.method_or_field(facts, loop_depth);
                }
                "#" => {
                    // Statement attribute.
                    self.pos += 1;
                    self.eat("!");
                    if self.peek_text() == "[" {
                        self.skip_balanced("[", "]");
                    }
                }
                "|" | "||" => {
                    if !self.closure_expr(facts, loop_depth) {
                        self.pos += 1;
                    }
                }
                _ if t.kind == TokKind::Ident => {
                    self.ident_in_body(facts, loop_depth, &t);
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Scans tokens inside `(…)` / `[…]` groups in a body — same fact
    /// extraction, stopping before the given closer.
    fn body_in_group(&mut self, facts: &mut Vec<Fact>, loop_depth: usize, close: &str) {
        while let Some(t) = self.peek().cloned() {
            if t.text == close {
                return;
            }
            match t.text.as_str() {
                "}" => return, // tolerate imbalance: recover upward
                "{" => {
                    self.pos += 1;
                    self.body(facts, loop_depth);
                    self.eat("}");
                }
                "for" | "while" | "loop" => self.loop_expr(facts, loop_depth, &t.text),
                "[" => {
                    let is_index = self.pos > 0 && self.tok_ends_expr(self.pos - 1);
                    if is_index && !t.in_test {
                        facts.push(Fact::Index {
                            line: t.line,
                            in_loop: loop_depth > 0,
                        });
                    }
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, "]");
                    self.eat("]");
                }
                "(" => {
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, ")");
                    self.eat(")");
                }
                "." => self.method_or_field(facts, loop_depth),
                "|" | "||" => {
                    if !self.closure_expr(facts, loop_depth) {
                        self.pos += 1;
                    }
                }
                _ if t.kind == TokKind::Ident => self.ident_in_body(facts, loop_depth, &t),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parses a closure at the cursor (`|` or `||`). Returns `false`
    /// when the token is a binary/pattern `|` (the previous token ends
    /// an expression and no `move` precedes) or the parameter list
    /// never closes — the caller then treats the token as plain
    /// punctuation, matching the pre-closure-aware behaviour.
    fn closure_expr(&mut self, facts: &mut Vec<Fact>, loop_depth: usize) -> bool {
        let open = match self.peek() {
            Some(t) if t.text == "|" || t.text == "||" => t.clone(),
            _ => return false,
        };
        let by_move = self.pos > 0 && self.toks[self.pos - 1].text == "move";
        if !by_move && self.pos > 0 && self.tok_ends_expr(self.pos - 1) {
            return false; // binary `|`/`||` between expressions
        }
        let save = self.pos;
        let mut params = Vec::new();
        self.pos += 1; // opening `|` (or the whole `||`)
        if open.text == "|" {
            // Parameter list up to the closing `|`. `in_type` masks the
            // idents of a `pat: Type` annotation; destructured patterns
            // contribute every lowercase leaf.
            let mut depth = 0usize;
            let mut in_type = false;
            loop {
                let Some(t) = self.peek().cloned() else {
                    self.pos = save;
                    return false;
                };
                match t.text.as_str() {
                    "|" if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    "(" | "[" => depth += 1,
                    ")" | "]" if depth > 0 => depth -= 1,
                    // Terminators a parameter list cannot contain: this
                    // was a pattern `|` after all — rewind.
                    ")" | "]" | "}" | "{" | ";" | "=>" | "||" | "=" => {
                        self.pos = save;
                        return false;
                    }
                    ":" if depth == 0 => in_type = true,
                    "," if depth == 0 => in_type = false,
                    _ => {
                        if t.kind == TokKind::Ident
                            && !in_type
                            && !is_expr_keyword(&t.text)
                            && !t.text.starts_with(char::is_uppercase)
                            && t.text != "_"
                        {
                            params.push(t.text.clone());
                        }
                    }
                }
                self.pos += 1;
            }
        }
        // Optional return type: `|x| -> T { … }` requires a block body.
        if self.peek_text() == "->" {
            self.pos += 1;
            loop {
                match self.peek_text() {
                    "{" | "" | "}" | ";" | "," => break,
                    "<" => self.skip_angles(),
                    "(" => self.skip_balanced("(", ")"),
                    "[" => self.skip_balanced("[", "]"),
                    _ => self.pos += 1,
                }
            }
        }
        let body_start;
        let body_end;
        if self.peek_text() == "{" {
            self.pos += 1;
            body_start = self.pos;
            self.body(facts, loop_depth);
            body_end = self.pos;
            self.eat("}");
        } else {
            body_start = self.pos;
            self.closure_body_expr(facts, loop_depth);
            body_end = self.pos;
        }
        let body: Vec<Tok> = self.toks[body_start..body_end].to_vec();
        let end_line = body.last().map_or(open.line, |t| t.line);
        if !open.in_test {
            let captures = collect_captures(&body, &params);
            let (enclosing_call, enclosing_recv) = match self.call_ctx.last() {
                Some((callee, recv)) => (Some(callee.clone()), recv.clone()),
                None => (None, String::new()),
            };
            facts.push(Fact::Closure {
                line: open.line,
                end_line,
                in_loop: loop_depth > 0,
                by_move,
                params,
                captures,
                enclosing_call,
                enclosing_recv,
                body,
            });
        }
        true
    }

    /// Scans a brace-less closure body: like [`Self::body_in_group`]
    /// but additionally stopping before any token that can end an
    /// expression-form closure (`,`, `;`, a closer, or a match arm's
    /// `=>`).
    fn closure_body_expr(&mut self, facts: &mut Vec<Fact>, loop_depth: usize) {
        while let Some(t) = self.peek().cloned() {
            match t.text.as_str() {
                "," | ";" | ")" | "]" | "}" | "=>" => return,
                "{" => {
                    self.pos += 1;
                    self.body(facts, loop_depth);
                    self.eat("}");
                }
                "for" | "while" | "loop" => self.loop_expr(facts, loop_depth, &t.text),
                "[" => {
                    let is_index = self.pos > 0 && self.tok_ends_expr(self.pos - 1);
                    if is_index && !t.in_test {
                        facts.push(Fact::Index {
                            line: t.line,
                            in_loop: loop_depth > 0,
                        });
                    }
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, "]");
                    self.eat("]");
                }
                "(" => {
                    self.pos += 1;
                    self.body_in_group(facts, loop_depth, ")");
                    self.eat(")");
                }
                "." => self.method_or_field(facts, loop_depth),
                "|" | "||" => {
                    if !self.closure_expr(facts, loop_depth) {
                        self.pos += 1;
                    }
                }
                _ if t.kind == TokKind::Ident => self.ident_in_body(facts, loop_depth, &t),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Handles an identifier inside a body: path call, macro, or plain
    /// name. Other idents fall through.
    fn ident_in_body(&mut self, facts: &mut Vec<Fact>, loop_depth: usize, t: &Tok) {
        if is_expr_keyword(&t.text) && !matches!(t.text.as_str(), "for" | "while" | "loop") {
            self.pos += 1;
            return;
        }
        // Collect the full `a::b::c` path (turbofish generics skipped).
        let start_line = t.line;
        let in_test = t.in_test;
        let mut path = vec![t.text.clone()];
        self.pos += 1;
        loop {
            if self.peek_text() == "::" {
                if self.peek_at(1) == "<" {
                    self.pos += 1;
                    self.skip_angles();
                    continue;
                }
                match self.toks.get(self.pos + 1) {
                    Some(n) if n.kind == TokKind::Ident => {
                        path.push(n.text.clone());
                        self.pos += 2;
                    }
                    _ => {
                        self.pos += 1;
                        break;
                    }
                }
            } else {
                break;
            }
        }
        match self.peek_text() {
            "!" => {
                // Macro invocation. Its arguments are real code (they
                // execute), so keep scanning inside the delimiters.
                self.pos += 1;
                if !in_test {
                    facts.push(Fact::Macro {
                        name: path.last().cloned().unwrap_or_default(),
                        line: start_line,
                        in_loop: loop_depth > 0,
                    });
                }
                match self.peek_text() {
                    "(" => {
                        self.pos += 1;
                        self.body_in_group(facts, loop_depth, ")");
                        self.eat(")");
                    }
                    "[" => {
                        self.pos += 1;
                        self.body_in_group(facts, loop_depth, "]");
                        self.eat("]");
                    }
                    "{" => {
                        self.pos += 1;
                        self.body(facts, loop_depth);
                        self.eat("}");
                    }
                    _ => {}
                }
            }
            "(" => {
                let callee = path.last().cloned().unwrap_or_default();
                let prefix = path[..path.len().saturating_sub(1)].join("::");
                if !in_test {
                    facts.push(Fact::Call {
                        path,
                        line: start_line,
                        in_loop: loop_depth > 0,
                    });
                }
                self.call_ctx.push((callee, prefix));
                self.pos += 1;
                self.body_in_group(facts, loop_depth, ")");
                self.eat(")");
                self.call_ctx.pop();
            }
            _ => {}
        }
    }

    /// Handles `.name(…)` / `.name::<T>(…)` / `.await` / field access /
    /// tuple index. The cursor sits on `.`.
    fn method_or_field(&mut self, facts: &mut Vec<Fact>, loop_depth: usize) {
        // Receiver: the trailing `ident(.ident)*` chain before the dot.
        let mut recv = Vec::new();
        let mut i = self.pos;
        while i >= 2 {
            let prev = &self.toks[i - 1];
            if prev.kind == TokKind::Ident && !is_expr_keyword(&prev.text) {
                recv.push(prev.text.clone());
                if self.toks[i - 2].text == "." {
                    i -= 2;
                    continue;
                }
            }
            break;
        }
        if recv.is_empty() && self.pos >= 1 {
            let prev = &self.toks[self.pos - 1];
            if prev.kind == TokKind::Ident && !is_expr_keyword(&prev.text) {
                recv.push(prev.text.clone());
            }
        }
        recv.reverse();

        let dot = self.bump(); // `.`
        let (name, line, in_test) = match self.peek() {
            Some(n) if n.kind == TokKind::Ident => (n.text.clone(), n.line, n.in_test),
            _ => return, // tuple index `.0`, `.await` handled as idents? numbers fall here
        };
        let _ = dot;
        self.pos += 1;
        if self.peek_text() == "::" && self.peek_at(1) == "<" {
            self.pos += 1;
            self.skip_angles();
        }
        if self.peek_text() == "(" {
            let zero_args = self.peek_at(1) == ")";
            self.call_ctx.push((name.clone(), recv.join(".")));
            if !in_test {
                facts.push(Fact::Method {
                    name,
                    recv,
                    zero_args,
                    line,
                    in_loop: loop_depth > 0,
                });
            }
            self.pos += 1;
            self.body_in_group(facts, loop_depth, ")");
            self.eat(")");
            self.call_ctx.pop();
        }
    }

    /// Parses a loop: header (for `for`/`while`), then the body one loop
    /// level deeper. Emits [`Fact::NonAscendingAccum`] when a
    /// non-ascending header feeds a compound-assignment body.
    fn loop_expr(&mut self, facts: &mut Vec<Fact>, loop_depth: usize, kw: &str) {
        let loop_line = self.cur_line();
        let in_test = self.peek().is_some_and(|t| t.in_test);
        self.pos += 1; // keyword
        let mut non_ascending = false;
        if kw != "loop" {
            // Header: scan to the body `{` at depth 0; facts inside the
            // header belong to the ENCLOSING loop level (a `for` header
            // runs once).
            loop {
                match self.peek_text() {
                    "{" | "" | "}" => break,
                    "(" => {
                        // Look for `.rev()` / `.step_by(` before descending.
                        self.pos += 1;
                        self.body_in_group(facts, loop_depth, ")");
                        self.eat(")");
                    }
                    "[" => {
                        let is_index = self.pos > 0 && self.tok_ends_expr(self.pos - 1);
                        if is_index && !self.peek().is_some_and(|t| t.in_test) {
                            facts.push(Fact::Index {
                                line: self.cur_line(),
                                in_loop: loop_depth > 0,
                            });
                        }
                        self.pos += 1;
                        self.body_in_group(facts, loop_depth, "]");
                        self.eat("]");
                    }
                    "." => {
                        let before = facts.len();
                        self.method_or_field(facts, loop_depth);
                        if facts[before..].iter().any(|f| {
                            matches!(f, Fact::Method { name, .. }
                                     if name == "rev" || name == "step_by")
                        }) {
                            non_ascending = true;
                        }
                    }
                    _ => match self.peek().cloned() {
                        Some(t) if t.kind == TokKind::Ident => {
                            self.ident_in_body(facts, loop_depth, &t)
                        }
                        Some(_) => self.pos += 1,
                        None => break,
                    },
                }
            }
        }
        if !self.eat("{") {
            return;
        }
        let body_start = facts.len();
        let compound_before = self.count_compound_assign_ahead();
        self.body(facts, loop_depth + 1);
        self.eat("}");
        let _ = body_start;
        if non_ascending && compound_before && !in_test {
            facts.push(Fact::NonAscendingAccum { line: loop_line });
        }
    }

    /// Whether a compound assignment (`+=` etc.) occurs in the balanced
    /// region starting at the cursor (the just-opened loop body).
    fn count_compound_assign_ahead(&self) -> bool {
        let mut depth = 1usize;
        let mut i = self.pos;
        while let Some(t) = self.toks.get(i) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                "+=" | "-=" | "*=" | "/=" => return true,
                _ => {}
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan_source("crates/x/src/a.rs", src, true))
    }

    #[test]
    fn lexer_round_trips_whitespace_stripped_code() {
        let src = "fn f<'a>(x: &'a [f32]) -> f32 { x[0] + 1.0e-3 } // c\n";
        let scanned = scan_source("crates/x/src/a.rs", src, true);
        let toks = lex(&scanned);
        let joined: String = toks.iter().map(|t| t.text.as_str()).collect();
        let stripped: String = scanned
            .lines
            .iter()
            .flat_map(|l| l.code.chars())
            .filter(|c| !c.is_whitespace())
            .collect();
        assert_eq!(joined, stripped);
    }

    fn closures(p: &ParsedFile) -> Vec<&Fact> {
        p.fns
            .iter()
            .flat_map(|f| &f.facts)
            .filter(|f| matches!(f, Fact::Closure { .. }))
            .collect()
    }

    #[test]
    fn move_closure_in_spawn_records_captures_and_mode() {
        let p = parse(
            "fn run(scope: &S, shared: &Stats) {\n    let local = 1;\n    scope.spawn(move || { shared.hits += local; });\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:?}");
        let Fact::Closure {
            by_move,
            captures,
            enclosing_call,
            enclosing_recv,
            params,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert!(*by_move);
        assert!(params.is_empty());
        assert_eq!(captures, &["local".to_string(), "shared".to_string()]);
        assert_eq!(enclosing_call.as_deref(), Some("spawn"));
        assert_eq!(enclosing_recv, "scope");
    }

    #[test]
    fn by_ref_closure_and_local_bindings_are_separated() {
        let p =
            parse("fn f(v: &[u32], off: u32) -> u32 {\n    v.iter().map(|x| x + off).sum()\n}\n");
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:?}");
        let Fact::Closure {
            by_move,
            params,
            captures,
            enclosing_call,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert!(!*by_move, "no `move` keyword: by-ref capture mode");
        assert_eq!(params, &["x".to_string()]);
        assert_eq!(captures, &["off".to_string()]);
        assert_eq!(enclosing_call.as_deref(), Some("map"));
    }

    #[test]
    fn nested_closures_bind_their_own_params() {
        let p = parse(
            "fn f(rows: Vec<Vec<u32>>, k: u32) -> u32 {\n    rows.iter().map(|r| r.iter().filter(|c| **c > k).count() as u32).sum()\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let cl = closures(&p);
        assert_eq!(cl.len(), 2, "{cl:?}");
        let outer = cl
            .iter()
            .find_map(|f| match f {
                Fact::Closure {
                    params, captures, ..
                } if params == &["r".to_string()] => Some(captures),
                _ => None,
            })
            .expect("outer closure");
        // `c` is the nested closure's param, not an outer capture.
        assert_eq!(outer, &["k".to_string()]);
    }

    #[test]
    fn thread_spawn_path_call_sets_enclosing_context() {
        let p = parse(
            "fn go(rx: Receiver<u32>) {\n    let h = thread::spawn(move || loop { let m = rx.recv(); use_it(m); });\n    h.join();\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:?}");
        let Fact::Closure {
            by_move,
            captures,
            enclosing_call,
            enclosing_recv,
            body,
            ..
        } = cl[0]
        else {
            unreachable!()
        };
        assert!(*by_move);
        assert_eq!(captures, &["rx".to_string()]);
        assert_eq!(enclosing_call.as_deref(), Some("spawn"));
        assert_eq!(enclosing_recv, "thread");
        assert!(body.iter().any(|t| t.text == "recv"));
    }

    #[test]
    fn pattern_and_binary_pipes_are_not_closures() {
        let p = parse(
            "fn f(x: u32, mask: u32) -> u32 {\n    match x { 0 | 1 => x | mask, Some(a) | None => 0, _ => x }\n}\n",
        );
        // No closure facts: every `|` is a pattern or binary operator.
        assert!(closures(&p).is_empty(), "{:?}", closures(&p));
    }

    #[test]
    fn match_arm_bindings_are_not_captures() {
        let p = parse(
            "fn f(r: Result<u32, E>, base: u32) -> u32 {\n    take(|| match r { Ok(v) => v + base, Err(e) => drop_it(e) })\n}\n",
        );
        let cl = closures(&p);
        assert_eq!(cl.len(), 1, "{cl:?}");
        let Fact::Closure { captures, .. } = cl[0] else {
            unreachable!()
        };
        // `v`/`e` bind in arm patterns; `r` and `base` come from outside.
        assert_eq!(captures, &["base".to_string(), "r".to_string()]);
    }

    #[test]
    fn static_items_record_name_and_type() {
        let p = parse(
            "static MAX: AtomicUsize = AtomicUsize::new(0);\nstatic mut RAW: u64 = 0;\nstatic TABLE: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let names: Vec<(&str, &str)> = p
            .statics
            .iter()
            .map(|s| (s.name.as_str(), s.ty.as_str()))
            .collect();
        assert_eq!(
            names,
            [
                ("MAX", "AtomicUsize"),
                ("RAW", "u64"),
                ("TABLE", "Mutex < Vec < ( usize , usize ) > >"),
            ]
        );
    }

    #[test]
    fn fn_items_and_owners_are_found() {
        let p = parse(
            "fn free() {}\nimpl Foo { fn method(&self) {} }\nimpl fmt::Display for Bar { fn fmt(&self) {} }\ntrait T { fn def(&self) { helper(); } fn decl(&self); }\nmod inner { fn nested() {} }\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let names: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone()))
            .collect();
        assert!(names.contains(&("free".into(), None)));
        assert!(names.contains(&("method".into(), Some("Foo".into()))));
        assert!(names.contains(&("fmt".into(), Some("Bar".into()))));
        assert!(names.contains(&("def".into(), Some("T".into()))));
        assert!(names.contains(&("decl".into(), Some("T".into()))));
        let nested = p.fns.iter().find(|f| f.name == "nested").expect("nested");
        assert_eq!(nested.modules, vec!["inner".to_string()]);
    }

    #[test]
    fn use_decls_resolve_aliases_and_groups() {
        let p = parse("use a::b::c;\nuse x::{y, z as w};\nuse q::*;\n");
        let aliases: Vec<&str> = p.uses.iter().map(|u| u.alias.as_str()).collect();
        assert_eq!(aliases, vec!["c", "y", "w", "*"]);
        assert_eq!(p.uses[0].segments, vec!["a", "b", "c"]);
        assert_eq!(p.uses[2].segments, vec!["x", "z"]);
        assert_eq!(p.uses[3].segments, vec!["q"]);
    }

    #[test]
    fn calls_methods_macros_and_indexing_are_facts() {
        let p = parse(
            "fn f(v: &[u32]) {\n    helper(v);\n    a::b::g();\n    v.iter().count();\n    let x = v[0];\n    panic!(\"no\");\n    let arr = [1, 2];\n}\n",
        );
        let f = &p.fns[0];
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Call { path, .. } if path == &vec!["helper".to_string()])));
        assert!(f.facts.iter().any(|x| matches!(
            x,
            Fact::Call { path, .. } if path.join("::") == "a::b::g"
        )));
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Method { name, .. } if name == "iter")));
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Macro { name, .. } if name == "panic")));
        let idx: Vec<_> = f
            .facts
            .iter()
            .filter(|x| matches!(x, Fact::Index { .. }))
            .collect();
        assert_eq!(idx.len(), 1, "array literal must not count: {:?}", f.facts);
    }

    #[test]
    fn loops_mark_in_loop_facts_and_rev_accumulation() {
        let p = parse(
            "fn f(v: &[f32]) -> f32 {\n    let before = alloc();\n    let mut s = 0.0;\n    for i in (0..v.len()).rev() {\n        s += v[i];\n    }\n    while s > 1.0 { shrink(&mut s); }\n    s\n}\n",
        );
        let f = &p.fns[0];
        assert!(f.facts.iter().any(|x| matches!(
            x,
            Fact::Call { path, in_loop: false, .. } if path[0] == "alloc"
        )));
        assert!(f.facts.iter().any(|x| matches!(
            x,
            Fact::Call { path, in_loop: true, .. } if path[0] == "shrink"
        )));
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Index { in_loop: true, .. })));
        assert!(
            f.facts
                .iter()
                .any(|x| matches!(x, Fact::NonAscendingAccum { line: 4 })),
            "{:?}",
            f.facts
        );
    }

    #[test]
    fn ascending_loops_are_not_flagged() {
        let p = parse("fn f(v: &[f32]) -> f32 {\n    let mut s = 0.0;\n    for i in 0..v.len() {\n        s += v[i];\n    }\n    s\n}\n");
        assert!(!p.fns[0]
            .facts
            .iter()
            .any(|x| matches!(x, Fact::NonAscendingAccum { .. })));
    }

    #[test]
    fn method_receivers_and_zero_args_are_recorded() {
        let p = parse(
            "fn f(&self) {\n    self.state.lock();\n    self.io.read(&mut buf);\n    guard.write();\n}\n",
        );
        let f = &p.fns[0];
        let locks: Vec<(String, Vec<String>, bool)> = f
            .facts
            .iter()
            .filter_map(|x| match x {
                Fact::Method {
                    name,
                    recv,
                    zero_args,
                    ..
                } => Some((name.clone(), recv.clone(), *zero_args)),
                _ => None,
            })
            .collect();
        assert!(locks.contains(&(
            "lock".into(),
            vec!["self".to_string(), "state".to_string()],
            true
        )));
        assert!(locks.contains(&(
            "read".into(),
            vec!["self".to_string(), "io".to_string()],
            false
        )));
        assert!(locks.contains(&("write".into(), vec!["guard".to_string()], true)));
    }

    #[test]
    fn cfg_test_functions_are_marked_and_fact_free() {
        let p = parse_file(&scan_source(
            "crates/x/src/a.rs",
            "fn prod() { go(); }\n#[cfg(test)]\nmod tests {\n    fn t() { boom(); }\n}\n",
            false,
        ));
        let prod = p.fns.iter().find(|f| f.name == "prod").expect("prod");
        assert!(!prod.in_test);
        let t = p.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.in_test);
        assert!(t.facts.is_empty(), "test facts are skipped: {:?}", t.facts);
    }

    #[test]
    fn item_macros_and_consts_do_not_derail_parsing() {
        let p = parse(
            "thread_local! { static S: u32 = 0; }\nconst N: usize = 4;\nstatic M: std::sync::Mutex<()> = std::sync::Mutex::new(());\nfn after() {}\n",
        );
        assert!(p.fns.iter().any(|f| f.name == "after"), "{:?}", p.fns);
    }

    #[test]
    fn param_names_and_body_tokens_are_captured() {
        let p = parse(
            "fn f(n: usize, mut names: Vec<String>, map: HashMap<String, usize>) -> usize {\n    n + 1\n}\nimpl Foo { fn m(&self, rows: usize) {} }\nfn g((a, b): (u32, u32)) {}\ntrait T { fn decl(&self, k: usize); }\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let f = p.fns.iter().find(|f| f.name == "f").expect("f");
        assert_eq!(f.params, vec!["n", "names", "map"]);
        let texts: Vec<&str> = f.body.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["n", "+", "1"], "body excludes the braces");
        let m = p.fns.iter().find(|f| f.name == "m").expect("m");
        assert_eq!(m.params, vec!["self", "rows"]);
        let g = p.fns.iter().find(|f| f.name == "g").expect("g");
        assert!(g.params.is_empty(), "destructured patterns are skipped");
        let decl = p.fns.iter().find(|f| f.name == "decl").expect("decl");
        assert_eq!(decl.params, vec!["self", "k"]);
        assert!(decl.body.is_empty(), "bodiless decls have no body tokens");
    }

    #[test]
    fn turbofish_and_generics_survive() {
        let p = parse(
            "fn f<T: Clone>(v: Vec<T>) -> usize {\n    v.iter().collect::<Vec<_>>();\n    helper::<u32>(1)\n}\n",
        );
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let f = &p.fns[0];
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Method { name, .. } if name == "collect")));
        assert!(f
            .facts
            .iter()
            .any(|x| matches!(x, Fact::Call { path, .. } if path == &vec!["helper".to_string()])));
    }
}
