//! Lockset dataflow: which locks are certainly held at each statement.
//!
//! A **must**-analysis over the PR 8 CFGs (Eraser-style). The abstract
//! state maps guard bindings to the lock they hold:
//!
//! ```text
//!   state ∈ Option<BTreeMap<guard, lock>>    (None = unreachable ⊤)
//! ```
//!
//! Transfer function, in order:
//! 1. **Condvar re-acquisition** — `q = cv.wait(q)` consumes guard `q`
//!    and re-binds the same lock to the result (also `wait_timeout`,
//!    `wait_while`).
//! 2. **Release** — `drop(g)` kills `g`.
//! 3. **Acquire** — `let g = m.lock()` (or `.read()`/`.write()`, with
//!    any `.unwrap()` chaining) binds `g → lock_name(m)`.
//! 4. **Strong rebind** — any other non-weak def of a guard kills it.
//!
//! Join is key-value intersection: a lock counts as held only when
//! every path holds it through the same guard. Guards that live to the
//! end of scope are held to the end of the CFG — scope-end drops are
//! not modeled, which over-approximates *held* and therefore
//! under-reports races (the safe direction for a must-lockset).
//!
//! Lock names are receiver-based: `self.inner.lock()` inside
//! `impl Daemon` names `Daemon.inner`, a local `m.lock()` names `m`.
//! Interprocedurally, [`entry_locks`] runs a meet-over-call-sites
//! fixpoint along `Edge::certain` call edges (like
//! `untrusted_size_flow`): a helper only ever invoked with `Daemon.inner`
//! held analyzes its own accesses under that lock. Call sites inside
//! spawn closures contribute the *closure* CFG's lockset, not the
//! enclosing function's — the spawned thread starts with no locks.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{self, Cfg, Stmt};
use crate::dataflow;
use crate::escape;
use crate::WorkspaceFacts;

/// Guard binding → lock name.
pub type LockEnv = BTreeMap<String, String>;

/// `None` is the unreachable top element (everything held), so the
/// intersection join degrades gracefully from the solver's `bottom`.
pub type LockState = Option<LockEnv>;

/// Zero-arg guard-returning acquisition methods.
pub const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Condvar blocking methods that consume and re-acquire a guard.
pub const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// The canonical name of the lock behind an acquisition call site.
/// `self.`-rooted receivers are qualified by the impl owner so the name
/// survives across methods of the same type.
pub fn lock_name(recv: &[String], owner: Option<&str>) -> String {
    if recv.first().map(String::as_str) == Some("self") {
        let rest = recv[1..].join(".");
        let owner = owner.unwrap_or("Self");
        if rest.is_empty() {
            owner.to_string()
        } else {
            format!("{owner}.{rest}")
        }
    } else {
        recv.join(".")
    }
}

/// Key-value intersection join (`None` = ⊤ absorbs).
pub fn join(a: &LockState, b: &LockState) -> LockState {
    match (a, b) {
        (None, x) | (x, None) => x.clone(),
        (Some(a), Some(b)) => Some(
            a.iter()
                .filter(|(k, v)| b.get(*k) == Some(*v))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
    }
}

/// Applies one statement to the environment (see the module doc for
/// the rule order).
pub fn transfer_stmt(stmt: &Stmt, env: &mut LockEnv, owner: Option<&str>) {
    // 1. Condvar re-acquisition: the guard argument's lock transfers to
    //    the defined binding.
    let wait_transfer = stmt.calls.iter().find_map(|c| {
        if !WAIT_METHODS.contains(&c.name()) {
            return None;
        }
        let guard = c
            .args
            .first()?
            .idents
            .iter()
            .find(|g| env.contains_key(*g))?;
        Some((guard.clone(), env.get(guard).cloned()?))
    });
    if let Some((guard, lock)) = wait_transfer {
        env.remove(&guard);
        if let Some(d) = stmt.defs.first() {
            env.insert(d.clone(), lock);
        }
        return;
    }

    // 2. `drop(g)` releases.
    for c in &stmt.calls {
        if !c.is_method && c.name() == "drop" {
            if let Some(g) = c.args.first().and_then(|a| a.idents.first()) {
                env.remove(g);
            }
        }
    }

    // 3. Acquisition: a def whose statement calls `lock`/`read`/`write`
    //    on a named receiver (argument-free: `m.lock()`, possibly
    //    `.unwrap()`-chained).
    if !stmt.weak_def {
        if let Some(d) = stmt.defs.first() {
            let acquired = stmt.calls.iter().find(|c| {
                c.is_method
                    && LOCK_METHODS.contains(&c.name())
                    && !c.recv.is_empty()
                    && c.args.iter().all(|a| a.idents.is_empty())
            });
            if let Some(call) = acquired {
                let name = lock_name(&call.recv, owner);
                env.insert(d.clone(), name);
                // Later defs of the same statement are chained temps.
                return;
            }
        }
        // 4. Strong rebind to a non-guard kills the old binding.
        for d in &stmt.defs {
            env.remove(d);
        }
    }
}

/// Solves the lockset dataflow for one CFG. Returns, per block, the
/// environment *before* each statement (aligned with `blocks[b].stmts`).
pub fn solve(cfg: &Cfg, entry: &LockEnv, owner: Option<&str>) -> Vec<Vec<LockEnv>> {
    let states = dataflow::solve_forward(
        cfg,
        /* bottom = */ None,
        /* init = */ Some(entry.clone()),
        join,
        |b, s: &LockState| {
            let Some(env) = s else { return None };
            let mut env = env.clone();
            for stmt in &cfg.blocks[b].stmts {
                transfer_stmt(stmt, &mut env, owner);
            }
            Some(env)
        },
    );
    let mut per_stmt = Vec::with_capacity(cfg.blocks.len());
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut env = states[b].clone().unwrap_or_default();
        let mut rows = Vec::with_capacity(block.stmts.len());
        for stmt in &block.stmts {
            rows.push(env.clone());
            transfer_stmt(stmt, &mut env, owner);
        }
        per_stmt.push(rows);
    }
    per_stmt
}

/// The set of lock names held in an environment.
pub fn held(env: &LockEnv) -> BTreeSet<String> {
    env.values().cloned().collect()
}

/// Every `guard → lock` binding a CFG ever establishes, flow-insensitive
/// (used to name the lock of a guard-mediated access even after joins
/// lose the binding on some path).
pub fn ever_bound(cfg: &Cfg, owner: Option<&str>) -> LockEnv {
    let mut out = LockEnv::new();
    for block in &cfg.blocks {
        for stmt in &block.stmts {
            if stmt.weak_def {
                continue;
            }
            if let Some(d) = stmt.defs.first() {
                for c in &stmt.calls {
                    if c.is_method && LOCK_METHODS.contains(&c.name()) && !c.recv.is_empty() {
                        out.insert(d.clone(), lock_name(&c.recv, owner));
                    }
                }
            }
        }
    }
    out
}

/// A per-line view of the held-lock sets of a solved CFG: meet across
/// statements sharing a line. Lookups for lines inside absorbed
/// multi-line statements fall back to the nearest preceding statement.
pub struct LineLocks {
    by_line: BTreeMap<usize, BTreeSet<String>>,
}

impl LineLocks {
    pub fn new(cfg: &Cfg, solved: &[Vec<LockEnv>]) -> LineLocks {
        let mut by_line: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (s, stmt) in block.stmts.iter().enumerate() {
                let locks = held(&solved[b][s]);
                by_line
                    .entry(stmt.line)
                    .and_modify(|cur| *cur = cur.intersection(&locks).cloned().collect())
                    .or_insert(locks);
            }
        }
        LineLocks { by_line }
    }

    /// Locks held at `line` (nearest preceding statement on a miss).
    pub fn at(&self, line: usize) -> BTreeSet<String> {
        self.by_line
            .range(..=line)
            .next_back()
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }
}

/// Interprocedural entry locks: for every call-graph node, the set of
/// locks held at *every* `certain` call site of it (meet over call
/// sites; `None` = never called, treated as no locks by consumers).
/// Spawn-closure call sites contribute the closure CFG's lockset with
/// an empty entry — the spawned thread holds nothing at birth.
pub fn entry_locks(facts: &WorkspaceFacts) -> Vec<Option<BTreeSet<String>>> {
    let n = facts.graph.fns.len();
    let mut entry: Vec<Option<BTreeSet<String>>> = vec![None; n];

    // Per-fn closure spans (line ranges + body CFG locksets), built
    // lazily once: call sites inside a spawn closure must not inherit
    // the parent's locks.
    struct SpawnCtx {
        line: usize,
        end_line: usize,
        locks: LineLocks,
    }
    let mut spawn_ctxs: Vec<Vec<SpawnCtx>> = Vec::with_capacity(n);
    for (i, node) in facts.graph.fns.iter().enumerate() {
        let mut ctxs = Vec::new();
        let def = facts
            .files
            .iter()
            .filter(|f| f.path == node.path)
            .flat_map(|f| &f.fns)
            .find(|d| d.line == node.line && d.name == node.name);
        if let Some(def) = def {
            for c in escape::closures(def) {
                if !escape::is_spawn(&c) {
                    continue;
                }
                let ccfg = cfg::build(c.body, c.line);
                let solved = solve(&ccfg, &LockEnv::new(), node.owner.as_deref());
                ctxs.push(SpawnCtx {
                    line: c.line,
                    end_line: c.end_line,
                    locks: LineLocks::new(&ccfg, &solved),
                });
            }
        }
        let _ = i;
        spawn_ctxs.push(ctxs);
    }

    // Meet-only fixpoint: entries shrink monotonically, so it
    // terminates; cap passes defensively anyway.
    for _pass in 0..32 {
        let mut changed = false;
        for (i, node) in facts.graph.fns.iter().enumerate() {
            let owner = node.owner.as_deref();
            // Seed the caller's CFG with pseudo-guards for its own
            // entry locks so they flow through to call sites.
            let mut seed = LockEnv::new();
            for (k, l) in entry[i].clone().unwrap_or_default().iter().enumerate() {
                seed.insert(format!("<entry:{k}>"), l.clone());
            }
            let cfg = &facts.cfgs[i];
            let solved = solve(cfg, &seed, owner);
            let lines = LineLocks::new(cfg, &solved);
            for e in &facts.graph.edges[i] {
                if !e.certain {
                    continue;
                }
                let site_locks = match spawn_ctxs[i]
                    .iter()
                    .find(|c| c.line <= e.line && e.line <= c.end_line)
                {
                    Some(ctx) => ctx.locks.at(e.line),
                    None => lines.at(e.line),
                };
                let merged = match &entry[e.callee] {
                    None => Some(site_locks),
                    Some(cur) => Some(cur.intersection(&site_locks).cloned().collect()),
                };
                if merged != entry[e.callee] {
                    entry[e.callee] = merged;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_file, ParsedFile};
    use crate::scan::scan_source;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan_source("crates/x/src/a.rs", src, true))
    }

    fn locks_at_call(src: &str, callee: &str) -> BTreeSet<String> {
        let p = parse(src);
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let f = &p.fns[0];
        let cfg = cfg::build(&f.body, f.line);
        let solved = solve(&cfg, &LockEnv::new(), f.owner.as_deref());
        for (b, block) in cfg.blocks.iter().enumerate() {
            for (s, stmt) in block.stmts.iter().enumerate() {
                if stmt.calls.iter().any(|c| c.name() == callee) {
                    return held(&solved[b][s]);
                }
            }
        }
        panic!("no call to {callee} found");
    }

    #[test]
    fn guard_holds_lock_until_drop() {
        let held = locks_at_call(
            "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    touch(g);\n}\n",
            "touch",
        );
        assert_eq!(held.len(), 1, "{held:?}");
        assert!(held.contains("m"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let held = locks_at_call(
            "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    drop(g);\n    touch();\n}\n",
            "touch",
        );
        assert!(held.is_empty(), "{held:?}");
    }

    #[test]
    fn self_receivers_qualify_by_owner() {
        let held = locks_at_call(
            "impl Daemon {\n    fn f(&self) {\n        let g = self.inner.lock().unwrap();\n        touch(g);\n    }\n}\n",
            "touch",
        );
        assert!(held.contains("Daemon.inner"), "{held:?}");
    }

    #[test]
    fn join_is_must_intersection() {
        // Lock taken on one branch only: not held after the join.
        let held = locks_at_call(
            "fn f(m: &Mutex<u32>, c: bool) {\n    let mut g = None;\n    if c {\n        g = Some(m.lock().unwrap());\n    }\n    touch(g);\n}\n",
            "touch",
        );
        assert!(held.is_empty(), "{held:?}");
    }

    #[test]
    fn condvar_wait_reacquires_the_same_lock() {
        // The crossbeam shim's receive loop shape.
        let held = locks_at_call(
            "impl Chan {\n    fn recv(&self) -> u32 {\n        let mut q = self.slots.lock().unwrap();\n        while q.is_empty() {\n            q = self.ready.wait(q).unwrap();\n        }\n        take(q)\n    }\n}\n",
            "take",
        );
        assert!(held.contains("Chan.slots"), "{held:?}");
    }

    #[test]
    fn strong_rebind_kills_the_guard() {
        let held = locks_at_call(
            "fn f(m: &Mutex<u32>) {\n    let mut g = m.lock().unwrap();\n    g = fresh();\n    touch(g);\n}\n",
            "touch",
        );
        assert!(held.is_empty(), "{held:?}");
    }

    #[test]
    fn entry_locks_meet_over_certain_call_sites() {
        let files = vec![parse(
            "fn locked(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    helper();\n    drop(g);\n}\nfn unlocked() {\n    helper();\n}\nfn helper() {\n    body();\n}\nfn only_locked(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    leaf();\n    drop(g);\n}\nfn leaf() {\n    body();\n}\n",
        )];
        let facts = crate::WorkspaceFacts::build(files);
        let entry = entry_locks(&facts);
        let idx = |name: &str| {
            facts
                .graph
                .fns
                .iter()
                .position(|f| f.name == name)
                .expect(name)
        };
        // `helper` has a locked and an unlocked caller: meet is empty.
        assert_eq!(entry[idx("helper")], Some(BTreeSet::new()), "{entry:?}");
        // `leaf` is only ever called under `m`.
        let leaf = entry[idx("leaf")].clone().expect("leaf called");
        assert!(leaf.contains("m"), "{leaf:?}");
        // Entry functions were never called: still ⊤.
        assert_eq!(entry[idx("locked")], None);
    }
}
