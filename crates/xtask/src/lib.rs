//! specinfer-lint: the in-repo workspace invariant checker.
//!
//! Run as `cargo run -p specinfer-xtask -- lint`. See ARCHITECTURE.md §8
//! for the rule catalogue and the allowlist policy. The crate is fully
//! offline and dependency-free: it must keep working on the bare
//! toolchain, because it is the thing that polices the shim boundary.

pub mod allowlist;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod escape;
pub mod lockset;
pub mod parse;
pub mod race;
pub mod rules;
pub mod scan;
pub mod semantic;
pub mod taint;

use rules::{Finding, Severity};
use std::path::{Path, PathBuf};

/// Relative path of the allowlist file inside the workspace.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint-allow.txt";

/// Parse-once fact cache shared by every semantic rule: the parsed
/// files, the call graph over them, and a CFG + parameter list per graph
/// node (aligned with `graph.fns` by index). Building this once and
/// handing it to each rule keeps the whole workspace lint a single parse
/// pass — the wall-time budget in `tests/lint_rules.rs` pins that.
pub struct WorkspaceFacts {
    pub files: Vec<parse::ParsedFile>,
    pub graph: callgraph::CallGraph,
    /// `cfgs[i]` is the control-flow graph of `graph.fns[i]`.
    pub cfgs: Vec<cfg::Cfg>,
    /// `params[i]` are the parameter names (including `self`) of
    /// `graph.fns[i]`.
    pub params: Vec<Vec<String>>,
}

impl WorkspaceFacts {
    pub fn build(files: Vec<parse::ParsedFile>) -> WorkspaceFacts {
        let graph = callgraph::build(&files);
        let mut cfgs = Vec::with_capacity(graph.fns.len());
        let mut params = Vec::with_capacity(graph.fns.len());
        for node in &graph.fns {
            let def = files
                .iter()
                .filter(|f| f.path == node.path)
                .flat_map(|f| &f.fns)
                .find(|d| d.line == node.line && d.name == node.name);
            match def {
                Some(d) => {
                    cfgs.push(cfg::build(&d.body, d.line));
                    params.push(d.params.clone());
                }
                None => {
                    // Graph nodes come from the same FnDefs, so this arm
                    // is unreachable in practice; an empty CFG keeps the
                    // alignment invariant regardless.
                    cfgs.push(cfg::build(&[], node.line));
                    params.push(Vec::new());
                }
            }
        }
        WorkspaceFacts {
            files,
            graph,
            cfgs,
            params,
        }
    }

    /// The raw source text of `line` (1-based) in `path`, for snippets.
    pub fn raw_line(&self, path: &str, line: usize) -> String {
        self.files
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.raw_line(line))
            .unwrap_or_default()
    }
}

/// Lints the whole workspace rooted at `root`. Findings are sorted by
/// path then line. I/O errors surface as `io` findings rather than
/// aborting the run, so one unreadable file cannot hide the rest.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    collect_files(root, root, &mut rs_files, &mut manifests, &mut findings);
    rs_files.sort();
    manifests.sort();

    let cache_dir = root.join("target").join("xtask-cache");
    let mut live = std::collections::BTreeMap::new();
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    let mut shim_parsed: Vec<parse::ParsedFile> = Vec::new();
    for rel in &rs_files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                let file = scan::scan_source(rel, &src, false);
                rules::rule_safety(&file, &mut findings);
                rules::rule_no_unwrap(&file, false, &mut findings);
                rules::rule_determinism(&file, false, &mut findings);
                rules::rule_thread_confinement(&file, false, &mut findings);
                // The semantic pass wants the whole workspace at once —
                // parse now, analyze after the walk. Shims stand in for
                // external crates and stay outside the graph, but the
                // race rule still reads them: the loom witness harnesses
                // live there. Parses are memoized by content hash.
                let is_crate = rel.starts_with("crates/");
                let is_shim = rel.starts_with("shims/");
                if is_crate || is_shim {
                    live.insert(cache::cache_path(&cache_dir, rel, &src), ());
                    let p = cache::load(&cache_dir, &file, &src).unwrap_or_else(|| {
                        let p = parse::parse_file(&file);
                        cache::store(&cache_dir, &src, &p);
                        p
                    });
                    if is_crate {
                        parsed.push(p);
                    } else {
                        shim_parsed.push(p);
                    }
                }
            }
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }
    cache::prune(&cache_dir, &live);
    let facts = WorkspaceFacts::build(parsed);
    semantic::semantic_findings_with_graph(&facts.files, &facts.graph, false, &mut findings);
    taint::taint_findings(&facts, false, &mut findings);
    race::race_findings(&facts, &shim_parsed, false, &mut findings);
    for rel in &manifests {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => rules::rule_shim_hygiene(rel, &text, &mut findings),
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }

    // Apply the audited-exception allowlist (absence of the file simply
    // means no exceptions).
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let (entries, mut errors) = allowlist::parse_allowlist(ALLOWLIST_PATH, &allow_text);
    let mut findings = allowlist::apply_allowlist(findings, &entries, ALLOWLIST_PATH);
    findings.append(&mut errors);

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Lints specific files with every rule forced in scope (no path-based
/// scoping, no test exemption, no allowlist). Used by the fixture
/// self-tests: a bad snippet must trigger its rule regardless of where
/// the fixture happens to live.
pub fn lint_files_strict(paths: &[PathBuf]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    for p in paths {
        let rel = p.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(p) {
            Ok(text) => {
                if rel.ends_with(".toml") {
                    rules::rule_shim_hygiene(&rel, &text, &mut findings);
                } else {
                    let file = scan::scan_source(&rel, &text, true);
                    rules::rule_safety(&file, &mut findings);
                    rules::rule_no_unwrap(&file, true, &mut findings);
                    rules::rule_determinism(&file, true, &mut findings);
                    rules::rule_thread_confinement(&file, true, &mut findings);
                    parsed.push(parse::parse_file(&file));
                }
            }
            Err(e) => findings.push(io_finding(&rel, &e)),
        }
    }
    // Semantic rules run over the given files as a mini-workspace, with
    // all path scoping disabled and entry points matched by name.
    let facts = WorkspaceFacts::build(parsed);
    semantic::semantic_findings_with_graph(&facts.files, &facts.graph, true, &mut findings);
    taint::taint_findings(&facts, true, &mut findings);
    race::race_findings(&facts, &[], true, &mut findings);
    findings
}

fn io_finding(rel: &str, e: &std::io::Error) -> Finding {
    Finding {
        rule: "io",
        severity: Severity::Error,
        path: rel.to_string(),
        line: 0,
        message: format!("could not read file: {e}"),
        snippet: String::new(),
        call_path: Vec::new(),
    }
}

/// Recursively collects workspace-relative `.rs` and `Cargo.toml` paths,
/// skipping build output, VCS metadata, and the lint's own bad-by-design
/// fixtures.
fn collect_files(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<String>,
    manifests: &mut Vec<String>,
    findings: &mut Vec<Finding>,
) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            let rel = rel_path(root, dir);
            findings.push(io_finding(&rel, &e));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_files(root, &path, rs, manifests, findings);
        } else if name.ends_with(".rs") {
            rs.push(rel_path(root, &path));
        } else if name == "Cargo.toml" {
            manifests.push(rel_path(root, &path));
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
