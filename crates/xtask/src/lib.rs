//! specinfer-lint: the in-repo workspace invariant checker.
//!
//! Run as `cargo run -p specinfer-xtask -- lint`. See ARCHITECTURE.md §8
//! for the rule catalogue and the allowlist policy. The crate is fully
//! offline and dependency-free: it must keep working on the bare
//! toolchain, because it is the thing that polices the shim boundary.

pub mod allowlist;
pub mod callgraph;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod semantic;

use rules::Finding;
use std::path::{Path, PathBuf};

/// Relative path of the allowlist file inside the workspace.
pub const ALLOWLIST_PATH: &str = "crates/xtask/lint-allow.txt";

/// Lints the whole workspace rooted at `root`. Findings are sorted by
/// path then line. I/O errors surface as `io` findings rather than
/// aborting the run, so one unreadable file cannot hide the rest.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();

    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    collect_files(root, root, &mut rs_files, &mut manifests, &mut findings);
    rs_files.sort();
    manifests.sort();

    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    for rel in &rs_files {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                let file = scan::scan_source(rel, &src, false);
                rules::rule_safety(&file, &mut findings);
                rules::rule_no_unwrap(&file, false, &mut findings);
                rules::rule_determinism(&file, false, &mut findings);
                rules::rule_thread_confinement(&file, false, &mut findings);
                // The semantic pass wants the whole workspace at once —
                // parse now, analyze after the walk. Shims stand in for
                // external crates and stay outside the graph.
                if rel.starts_with("crates/") {
                    parsed.push(parse::parse_file(&file));
                }
            }
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }
    semantic::semantic_findings(&parsed, false, &mut findings);
    for rel in &manifests {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(text) => rules::rule_shim_hygiene(rel, &text, &mut findings),
            Err(e) => findings.push(io_finding(rel, &e)),
        }
    }

    // Apply the audited-exception allowlist (absence of the file simply
    // means no exceptions).
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let (entries, mut errors) = allowlist::parse_allowlist(ALLOWLIST_PATH, &allow_text);
    let mut findings = allowlist::apply_allowlist(findings, &entries, ALLOWLIST_PATH);
    findings.append(&mut errors);

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Lints specific files with every rule forced in scope (no path-based
/// scoping, no test exemption, no allowlist). Used by the fixture
/// self-tests: a bad snippet must trigger its rule regardless of where
/// the fixture happens to live.
pub fn lint_files_strict(paths: &[PathBuf]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut parsed: Vec<parse::ParsedFile> = Vec::new();
    for p in paths {
        let rel = p.to_string_lossy().replace('\\', "/");
        match std::fs::read_to_string(p) {
            Ok(text) => {
                if rel.ends_with(".toml") {
                    rules::rule_shim_hygiene(&rel, &text, &mut findings);
                } else {
                    let file = scan::scan_source(&rel, &text, true);
                    rules::rule_safety(&file, &mut findings);
                    rules::rule_no_unwrap(&file, true, &mut findings);
                    rules::rule_determinism(&file, true, &mut findings);
                    rules::rule_thread_confinement(&file, true, &mut findings);
                    parsed.push(parse::parse_file(&file));
                }
            }
            Err(e) => findings.push(io_finding(&rel, &e)),
        }
    }
    // Semantic rules run over the given files as a mini-workspace, with
    // all path scoping disabled and entry points matched by name.
    semantic::semantic_findings(&parsed, true, &mut findings);
    findings
}

fn io_finding(rel: &str, e: &std::io::Error) -> Finding {
    Finding {
        rule: "io",
        path: rel.to_string(),
        line: 0,
        message: format!("could not read file: {e}"),
        snippet: String::new(),
        call_path: Vec::new(),
    }
}

/// Recursively collects workspace-relative `.rs` and `Cargo.toml` paths,
/// skipping build output, VCS metadata, and the lint's own bad-by-design
/// fixtures.
fn collect_files(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<String>,
    manifests: &mut Vec<String>,
    findings: &mut Vec<Finding>,
) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            let rel = rel_path(root, dir);
            findings.push(io_finding(&rel, &e));
            return;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_files(root, &path, rs, manifests, findings);
        } else if name.ends_with(".rs") {
            rs.push(rel_path(root, &path));
        } else if name == "Cargo.toml" {
            manifests.push(rel_path(root, &path));
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
