//! Parsed-file fact cache: memoizes [`crate::parse::parse_file`] output
//! in `target/xtask-cache/`, keyed by the FNV-1a 64-bit hash of
//! `path + NUL + content`.
//!
//! `WorkspaceFacts` used to re-parse the whole workspace on every
//! `xtask lint` invocation; parsing is the per-file O(workspace) part
//! (the scanner still runs — the lexical rules need it — and the call
//! graph and CFGs are rebuilt from the cached facts, which is cheap by
//! comparison). A warm cache turns the parse pass into one small file
//! read per source file.
//!
//! The serialization is a hand-rolled, line-oriented text format (the
//! lint runs on the bare toolchain — no serde): a version header, then
//! one record per line with `\x1f`-separated fields. Any mismatch —
//! missing file, stale version, truncated record, unknown tag — makes
//! [`load`] return `None` and the caller re-parses and re-stores; a
//! corrupt cache can cost time, never correctness. `raw_lines` are not
//! serialized: the caller rebuilds them from the `ScannedFile` it
//! already has in hand. Strict/fixture lints bypass the cache entirely.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::parse::{Fact, FnDef, ParseError, ParsedFile, StaticDef, Tok, TokKind, UseDecl};
use crate::scan::ScannedFile;

/// Format version: bump whenever the serialized shape changes so stale
/// caches miss instead of mis-parse.
const HEADER: &str = "xtask-cache v1";

/// FNV-1a 64-bit over raw bytes (same constants as
/// [`crate::allowlist::snippet_hash`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache file for a (path, content) pair.
pub fn cache_path(dir: &Path, rel: &str, src: &str) -> PathBuf {
    let mut keyed = Vec::with_capacity(rel.len() + 1 + src.len());
    keyed.extend_from_slice(rel.as_bytes());
    keyed.push(0);
    keyed.extend_from_slice(src.as_bytes());
    dir.join(format!("{:016x}.facts", fnv1a64(&keyed)))
}

/// Loads the cached parse of `file` if present and intact. `src` must
/// be the exact content the `ScannedFile` was scanned from (it keys the
/// hash); `raw_lines` are rebuilt from the scan.
pub fn load(dir: &Path, file: &ScannedFile, src: &str) -> Option<ParsedFile> {
    let text = std::fs::read_to_string(cache_path(dir, &file.path, src)).ok()?;
    let raw_lines: Vec<String> = file.lines.iter().map(|l| l.raw.clone()).collect();
    deserialize(&text, &file.path, raw_lines)
}

/// Serializes and writes the parse result. Failures are silently
/// dropped — the cache is an optimization, not a requirement (e.g. a
/// read-only checkout still lints).
pub fn store(dir: &Path, src: &str, parsed: &ParsedFile) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = cache_path(dir, &parsed.path, src);
    let _ = std::fs::write(path, serialize(parsed));
}

// ---------------------------------------------------------------------
// Field escaping: \x1f separates fields, newlines separate records.
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\x1f' => out.push_str("\\u"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('u') => out.push('\x1f'),
            Some(c) => out.push(c),
            None => break,
        }
    }
    out
}

fn kind_char(k: TokKind) -> char {
    match k {
        TokKind::Ident => 'i',
        TokKind::Number => 'n',
        TokKind::Str => 's',
        TokKind::Tick => 't',
        TokKind::Punct => 'p',
    }
}

fn kind_of(c: char) -> Option<TokKind> {
    Some(match c {
        'i' => TokKind::Ident,
        'n' => TokKind::Number,
        's' => TokKind::Str,
        't' => TokKind::Tick,
        'p' => TokKind::Punct,
        _ => return None,
    })
}

/// `<kind><in_test01>:<line>:<escaped text>`
fn tok_field(t: &Tok) -> String {
    format!(
        "{}{}:{}:{}",
        kind_char(t.kind),
        if t.in_test { '1' } else { '0' },
        t.line,
        esc(&t.text)
    )
}

fn parse_tok(field: &str) -> Option<Tok> {
    let mut chars = field.chars();
    let kind = kind_of(chars.next()?)?;
    let in_test = match chars.next()? {
        '0' => false,
        '1' => true,
        _ => return None,
    };
    let rest = chars.as_str().strip_prefix(':')?;
    let (line, text) = rest.split_once(':')?;
    Some(Tok {
        kind,
        text: unesc(text),
        line: line.parse().ok()?,
        in_test,
    })
}

fn toks_fields(toks: &[Tok], out: &mut String) {
    for t in toks {
        out.push('\x1f');
        out.push_str(&tok_field(t));
    }
}

fn bool_field(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

fn serialize(p: &ParsedFile) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for u in &p.uses {
        out.push_str(&format!("u\x1f{}", esc(&u.alias)));
        for s in &u.segments {
            out.push_str(&format!("\x1f{}", esc(s)));
        }
        out.push('\n');
    }
    for s in &p.statics {
        out.push_str(&format!(
            "s\x1f{}\x1f{}\x1f{}\x1f{}\n",
            esc(&s.name),
            s.line,
            bool_field(s.in_test),
            esc(&s.ty)
        ));
    }
    for e in &p.errors {
        out.push_str(&format!("e\x1f{}\x1f{}\n", e.line, esc(&e.message)));
    }
    for f in &p.fns {
        out.push_str(&format!(
            "f\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\n",
            esc(&f.name),
            f.owner.as_deref().map(esc).unwrap_or_default(),
            f.line,
            bool_field(f.in_test),
            esc(&f.sig),
            f.modules.join(","),
            f.params.join(",")
        ));
        for fact in &f.facts {
            serialize_fact(fact, &mut out);
        }
        out.push('b');
        toks_fields(&f.body, &mut out);
        out.push('\n');
    }
    out
}

fn serialize_fact(fact: &Fact, out: &mut String) {
    match fact {
        Fact::Call {
            path,
            line,
            in_loop,
        } => {
            out.push_str(&format!(
                "C\x1f{}\x1f{}\x1f{}\n",
                line,
                bool_field(*in_loop),
                path.join("::")
            ));
        }
        Fact::Method {
            name,
            recv,
            zero_args,
            line,
            in_loop,
        } => {
            out.push_str(&format!(
                "M\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\n",
                line,
                bool_field(*in_loop),
                bool_field(*zero_args),
                esc(name),
                recv.join(".")
            ));
        }
        Fact::Macro {
            name,
            line,
            in_loop,
        } => {
            out.push_str(&format!(
                "X\x1f{}\x1f{}\x1f{}\n",
                line,
                bool_field(*in_loop),
                esc(name)
            ));
        }
        Fact::Index { line, in_loop } => {
            out.push_str(&format!("I\x1f{}\x1f{}\n", line, bool_field(*in_loop)));
        }
        Fact::NonAscendingAccum { line } => {
            out.push_str(&format!("N\x1f{line}\n"));
        }
        Fact::Closure {
            line,
            end_line,
            in_loop,
            by_move,
            params,
            captures,
            enclosing_call,
            enclosing_recv,
            body,
        } => {
            out.push_str(&format!(
                "L\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}\x1f{}",
                line,
                end_line,
                bool_field(*in_loop),
                bool_field(*by_move),
                params.join(","),
                captures.join(","),
                enclosing_call.as_deref().map(esc).unwrap_or_default(),
                esc(enclosing_recv)
            ));
            toks_fields(body, out);
            out.push('\n');
        }
    }
}

fn split_names(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_string).collect()
    }
}

fn deserialize(text: &str, path: &str, raw_lines: Vec<String>) -> Option<ParsedFile> {
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return None;
    }
    let mut p = ParsedFile {
        path: path.to_string(),
        uses: Vec::new(),
        fns: Vec::new(),
        statics: Vec::new(),
        errors: Vec::new(),
        raw_lines,
    };
    for line in lines {
        let fields: Vec<&str> = line.split('\x1f').collect();
        match fields[0] {
            "u" => {
                if fields.len() < 2 {
                    return None;
                }
                p.uses.push(UseDecl {
                    alias: unesc(fields[1]),
                    segments: fields[2..].iter().map(|s| unesc(s)).collect(),
                });
            }
            "s" => {
                if fields.len() != 5 {
                    return None;
                }
                p.statics.push(StaticDef {
                    name: unesc(fields[1]),
                    line: fields[2].parse().ok()?,
                    in_test: parse_bool(fields[3])?,
                    ty: unesc(fields[4]),
                });
            }
            "e" => {
                if fields.len() != 3 {
                    return None;
                }
                p.errors.push(ParseError {
                    line: fields[1].parse().ok()?,
                    message: unesc(fields[2]),
                });
            }
            "f" => {
                if fields.len() != 8 {
                    return None;
                }
                let owner = fields[2];
                p.fns.push(FnDef {
                    name: unesc(fields[1]),
                    owner: (!owner.is_empty()).then(|| unesc(owner)),
                    line: fields[3].parse().ok()?,
                    in_test: parse_bool(fields[4])?,
                    sig: unesc(fields[5]),
                    modules: split_names(fields[6]),
                    params: split_names(fields[7]),
                    facts: Vec::new(),
                    body: Vec::new(),
                });
            }
            "b" => {
                let f = p.fns.last_mut()?;
                f.body = fields[1..]
                    .iter()
                    .map(|t| parse_tok(t))
                    .collect::<Option<Vec<_>>>()?;
            }
            tag @ ("C" | "M" | "X" | "I" | "N" | "L") => {
                let fact = deserialize_fact(tag, &fields)?;
                p.fns.last_mut()?.facts.push(fact);
            }
            _ => return None,
        }
    }
    Some(p)
}

fn deserialize_fact(tag: &str, fields: &[&str]) -> Option<Fact> {
    Some(match tag {
        "C" => Fact::Call {
            line: fields.get(1)?.parse().ok()?,
            in_loop: parse_bool(fields.get(2)?)?,
            path: fields.get(3)?.split("::").map(str::to_string).collect(),
        },
        "M" => Fact::Method {
            line: fields.get(1)?.parse().ok()?,
            in_loop: parse_bool(fields.get(2)?)?,
            zero_args: parse_bool(fields.get(3)?)?,
            name: unesc(fields.get(4)?),
            recv: {
                let r = fields.get(5)?;
                if r.is_empty() {
                    Vec::new()
                } else {
                    r.split('.').map(str::to_string).collect()
                }
            },
        },
        "X" => Fact::Macro {
            line: fields.get(1)?.parse().ok()?,
            in_loop: parse_bool(fields.get(2)?)?,
            name: unesc(fields.get(3)?),
        },
        "I" => Fact::Index {
            line: fields.get(1)?.parse().ok()?,
            in_loop: parse_bool(fields.get(2)?)?,
        },
        "N" => Fact::NonAscendingAccum {
            line: fields.get(1)?.parse().ok()?,
        },
        "L" => {
            if fields.len() < 9 {
                return None;
            }
            let call = fields[7];
            Fact::Closure {
                line: fields[1].parse().ok()?,
                end_line: fields[2].parse().ok()?,
                in_loop: parse_bool(fields[3])?,
                by_move: parse_bool(fields[4])?,
                params: split_names(fields[5]),
                captures: split_names(fields[6]),
                enclosing_call: (!call.is_empty()).then(|| unesc(call)),
                enclosing_recv: unesc(fields[8]),
                body: fields[9..]
                    .iter()
                    .map(|t| parse_tok(t))
                    .collect::<Option<Vec<_>>>()?,
            }
        }
        _ => return None,
    })
}

/// Removes cache entries for content hashes not in `live` — keeps the
/// directory from accreting one file per historical edit.
pub fn prune(dir: &Path, live: &BTreeMap<PathBuf, ()>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "facts") && !live.contains_key(&path) {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan_source;

    const SRC: &str = "use std::sync::Arc;\nstatic LIMIT: AtomicUsize = AtomicUsize::new(8);\npub struct W;\nimpl W {\n    pub fn go(&self, xs: &[u32]) -> u32 {\n        let mut acc = 0;\n        for x in xs.iter() {\n            acc += helper(*x);\n        }\n        std::thread::scope(|scope| {\n            scope.spawn(move || consume(acc));\n        });\n        acc\n    }\n}\nfn helper(v: u32) -> u32 {\n    v.saturating_add(1)\n}\n";

    #[test]
    fn round_trip_preserves_the_parse_exactly() {
        let file = scan_source("crates/x/src/a.rs", SRC, true);
        let parsed = parse_file(&file);
        assert!(parsed.errors.is_empty(), "{:?}", parsed.errors);
        let text = serialize(&parsed);
        let raw: Vec<String> = file.lines.iter().map(|l| l.raw.clone()).collect();
        let loaded = deserialize(&text, &parsed.path, raw).expect("deserializes");
        assert_eq!(format!("{parsed:?}"), format!("{loaded:?}"));
    }

    #[test]
    fn version_or_shape_mismatch_misses() {
        let file = scan_source("crates/x/src/a.rs", SRC, true);
        let parsed = parse_file(&file);
        let good = serialize(&parsed);
        assert!(deserialize(&good.replace(HEADER, "xtask-cache v0"), "p", Vec::new()).is_none());
        let truncated = &good[..good.len() / 2];
        // Truncation may cut mid-record; a half record must not load.
        let maybe = deserialize(truncated, "p", Vec::new());
        if let Some(p) = maybe {
            // If it happened to cut at a record boundary the prefix is
            // self-consistent, but it must not equal the full parse.
            assert_ne!(format!("{p:?}"), format!("{parsed:?}"));
        }
    }

    #[test]
    fn store_then_load_through_the_fs() {
        let dir = std::env::temp_dir().join(format!(
            "xtask-cache-test-{}-{}",
            std::process::id(),
            fnv1a64(SRC.as_bytes())
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let file = scan_source("crates/x/src/a.rs", SRC, true);
        let parsed = parse_file(&file);
        assert!(load(&dir, &file, SRC).is_none(), "cold cache misses");
        store(&dir, SRC, &parsed);
        let warm = load(&dir, &file, SRC).expect("warm cache hits");
        assert_eq!(format!("{parsed:?}"), format!("{warm:?}"));
        // Different content, same path: distinct key.
        assert!(load(&dir, &file, "fn other() {}\n").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_survives_separator_and_newline_bytes() {
        for s in ["plain", "a\\b", "nl\nhere", "sep\x1fhere", "\\n literal"] {
            assert_eq!(unesc(&esc(s)), s, "{s:?}");
        }
    }
}
