//! Audited-exception allowlist.
//!
//! `crates/xtask/lint-allow.txt` holds the findings the team has audited
//! and accepted, one per line:
//!
//! ```text
//! rule | path-suffix | line-substring | snippet-hash | justification
//! ```
//!
//! A finding is suppressed when an entry's rule matches, the finding's
//! path ends with the entry's path-suffix, the finding's source line
//! contains the line-substring, and the FNV-1a hash of the (trimmed)
//! source line equals the entry's snippet-hash. The hash pins the
//! exception to the exact audited line: if the line is edited — even to
//! a different violation containing the same substring — the entry goes
//! stale instead of silently covering the new code. The justification is
//! mandatory — an entry without one is itself a lint error, as is an
//! entry that no longer matches anything (stale exceptions must be
//! deleted, not accumulated). A stale report prints the current hash of
//! any near-miss so a deliberate re-audit is a one-line edit.

use crate::rules::{Finding, Severity};

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_suffix: String,
    pub line_substring: String,
    /// FNV-1a 64 hash of the trimmed audited source line, 16 hex chars.
    pub snippet_hash: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub src_line: usize,
}

/// FNV-1a 64-bit hash of the trimmed snippet, as 16 lowercase hex chars.
/// FNV is not cryptographic, but the allowlist only needs to notice
/// edits, not resist adversaries — and it keeps the lint dependency-free.
pub fn snippet_hash(snippet: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in snippet.trim().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Parses the allowlist text. Malformed or justification-less entries are
/// returned as findings against the allowlist file itself.
pub fn parse_allowlist(path: &str, text: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(5, '|').map(str::trim).collect();
        if parts.len() != 5 || parts.iter().take(4).any(|p| p.is_empty()) {
            errors.push(Finding {
                rule: "allowlist",
                severity: Severity::Error,
                path: path.to_string(),
                line: i + 1,
                message: "malformed entry; expected `rule | path-suffix | line-substring | \
                          snippet-hash | justification`"
                    .into(),
                snippet: raw.to_string(),
                call_path: Vec::new(),
            });
            continue;
        }
        if parts[4].is_empty() {
            errors.push(Finding {
                rule: "allowlist",
                severity: Severity::Error,
                path: path.to_string(),
                line: i + 1,
                message: "entry has no justification; audited exceptions must say why".into(),
                snippet: raw.to_string(),
                call_path: Vec::new(),
            });
            continue;
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            path_suffix: parts[1].to_string(),
            line_substring: parts[2].to_string(),
            snippet_hash: parts[3].to_string(),
            justification: parts[4].to_string(),
            src_line: i + 1,
        });
    }
    (entries, errors)
}

/// Removes allowlisted findings. Returns the surviving findings plus one
/// `allowlist` finding per entry that matched nothing (stale exception).
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
    allowlist_path: &str,
) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    // Rule/path/substring matched but the line's hash changed: the
    // audited code was edited. Remembered per entry for the stale report.
    let mut near_miss: Vec<Option<String>> = vec![None; entries.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        let hash = snippet_hash(&f.snippet);
        let mut suppressed = false;
        for (k, e) in entries.iter().enumerate() {
            if e.rule == f.rule
                && f.path.ends_with(&e.path_suffix)
                && f.snippet.contains(&e.line_substring)
            {
                if e.snippet_hash == hash {
                    used[k] = true;
                    suppressed = true;
                } else {
                    near_miss[k] = Some(hash.clone());
                }
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (k, e) in entries.iter().enumerate() {
        if !used[k] {
            let detail = match &near_miss[k] {
                Some(h) => format!(
                    "; a finding matches everything but the snippet hash — the audited line \
                     changed (current hash `{h}`); re-audit or delete"
                ),
                None => "; delete it".to_string(),
            };
            out.push(Finding {
                rule: "allowlist",
                severity: Severity::Error,
                path: allowlist_path.to_string(),
                line: e.src_line,
                message: format!(
                    "stale allowlist entry (rule `{}`, path `…{}`) matches nothing{detail}",
                    e.rule, e.path_suffix
                ),
                snippet: format!(
                    "{} | {} | {} | {}",
                    e.rule, e.path_suffix, e.line_substring, e.snippet_hash
                ),
                call_path: Vec::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            call_path: Vec::new(),
        }
    }

    #[test]
    fn snippet_hash_is_stable_and_trims() {
        assert_eq!(snippet_hash("x.unwrap();"), snippet_hash("  x.unwrap();\t"));
        assert_ne!(snippet_hash("x.unwrap();"), snippet_hash("y.unwrap();"));
        assert_eq!(snippet_hash("").len(), 16);
    }

    #[test]
    fn parse_rejects_missing_justification() {
        let h = snippet_hash("x.expect(\"ok\");");
        let (entries, errors) = parse_allowlist(
            "lint-allow.txt",
            &format!(
                "# comment\n\nno_unwrap | spec/src/a.rs | .expect( | {h} | parent exists by construction\nno_unwrap | spec/src/b.rs | .unwrap() | {h} |\nbad-line\n"
            ),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert_eq!(errors[0].line, 4);
        assert_eq!(errors[1].line, 5);
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let h = snippet_hash("x.expect(\"ok\");");
        let (entries, errors) = parse_allowlist(
            "lint-allow.txt",
            &format!(
                "no_unwrap | spec/src/a.rs | .expect(\"ok\") | {h} | audited\nno_unwrap | spec/src/gone.rs | .unwrap() | {h} | audited\n"
            ),
        );
        assert!(errors.is_empty());
        let findings = vec![
            finding("no_unwrap", "crates/spec/src/a.rs", "x.expect(\"ok\");"),
            finding("no_unwrap", "crates/spec/src/a.rs", "y.unwrap();"),
        ];
        let out = apply_allowlist(findings, &entries, "crates/xtask/lint-allow.txt");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.snippet.contains("y.unwrap")));
        assert!(out
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("stale")));
    }

    #[test]
    fn edited_line_goes_stale_even_when_the_substring_still_matches() {
        // The pre-hash bug: rule + path + substring all still match the
        // *edited* line, so the old format kept suppressing it. With the
        // hash pinned to the audited text, the entry goes stale and the
        // edited line's finding surfaces.
        let h = snippet_hash("a.unwrap(); // audited: cannot fail");
        let (entries, errors) = parse_allowlist(
            "lint-allow.txt",
            &format!("no_unwrap | spec/src/a.rs | .unwrap() | {h} | audited\n"),
        );
        assert!(errors.is_empty());
        let findings = vec![finding(
            "no_unwrap",
            "crates/spec/src/a.rs",
            "b.unwrap(); // new code, same substring",
        )];
        let out = apply_allowlist(findings, &entries, "crates/xtask/lint-allow.txt");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.snippet.contains("b.unwrap")));
        let stale = out
            .iter()
            .find(|f| f.rule == "allowlist")
            .expect("stale entry reported");
        assert!(stale.message.contains("current hash"), "{}", stale.message);
    }
}
