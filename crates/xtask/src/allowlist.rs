//! Audited-exception allowlist.
//!
//! `crates/xtask/lint-allow.txt` holds the findings the team has audited
//! and accepted, one per line:
//!
//! ```text
//! rule | path-suffix | line-substring | justification
//! ```
//!
//! A finding is suppressed when an entry's rule matches, the finding's
//! path ends with the entry's path-suffix, and the finding's source line
//! contains the line-substring. The justification is mandatory — an
//! entry without one is itself a lint error, as is an entry that no
//! longer matches anything (stale exceptions must be deleted, not
//! accumulated).

use crate::rules::Finding;

#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: String,
    pub path_suffix: String,
    pub line_substring: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub src_line: usize,
}

/// Parses the allowlist text. Malformed or justification-less entries are
/// returned as findings against the allowlist file itself.
pub fn parse_allowlist(path: &str, text: &str) -> (Vec<AllowEntry>, Vec<Finding>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() != 4 || parts.iter().take(3).any(|p| p.is_empty()) {
            errors.push(Finding {
                rule: "allowlist",
                path: path.to_string(),
                line: i + 1,
                message: "malformed entry; expected `rule | path-suffix | line-substring | \
                          justification`"
                    .into(),
                snippet: raw.to_string(),
                call_path: Vec::new(),
            });
            continue;
        }
        if parts[3].is_empty() {
            errors.push(Finding {
                rule: "allowlist",
                path: path.to_string(),
                line: i + 1,
                message: "entry has no justification; audited exceptions must say why".into(),
                snippet: raw.to_string(),
                call_path: Vec::new(),
            });
            continue;
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            path_suffix: parts[1].to_string(),
            line_substring: parts[2].to_string(),
            justification: parts[3].to_string(),
            src_line: i + 1,
        });
    }
    (entries, errors)
}

/// Removes allowlisted findings. Returns the surviving findings plus one
/// `allowlist` finding per entry that matched nothing (stale exception).
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
    allowlist_path: &str,
) -> Vec<Finding> {
    let mut used = vec![false; entries.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        let mut suppressed = false;
        for (k, e) in entries.iter().enumerate() {
            if e.rule == f.rule
                && f.path.ends_with(&e.path_suffix)
                && f.snippet.contains(&e.line_substring)
            {
                used[k] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (k, e) in entries.iter().enumerate() {
        if !used[k] {
            out.push(Finding {
                rule: "allowlist",
                path: allowlist_path.to_string(),
                line: e.src_line,
                message: format!(
                    "stale allowlist entry (rule `{}`, path `…{}`) matches nothing; delete it",
                    e.rule, e.path_suffix
                ),
                snippet: format!("{} | {} | {}", e.rule, e.path_suffix, e.line_substring),
                call_path: Vec::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            call_path: Vec::new(),
        }
    }

    #[test]
    fn parse_rejects_missing_justification() {
        let (entries, errors) = parse_allowlist(
            "lint-allow.txt",
            "# comment\n\nno_unwrap | spec/src/a.rs | .expect( | parent exists by construction\nno_unwrap | spec/src/b.rs | .unwrap() |\nbad-line\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert_eq!(errors[0].line, 4);
        assert_eq!(errors[1].line, 5);
    }

    #[test]
    fn apply_suppresses_and_flags_stale() {
        let (entries, errors) = parse_allowlist(
            "lint-allow.txt",
            "no_unwrap | spec/src/a.rs | .expect(\"ok\") | audited\nno_unwrap | spec/src/gone.rs | .unwrap() | audited\n",
        );
        assert!(errors.is_empty());
        let findings = vec![
            finding("no_unwrap", "crates/spec/src/a.rs", "x.expect(\"ok\");"),
            finding("no_unwrap", "crates/spec/src/a.rs", "y.unwrap();"),
        ];
        let out = apply_allowlist(findings, &entries, "crates/xtask/lint-allow.txt");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.snippet.contains("y.unwrap")));
        assert!(out
            .iter()
            .any(|f| f.rule == "allowlist" && f.message.contains("stale")));
    }
}
