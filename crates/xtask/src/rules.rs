//! The five workspace invariant rules.
//!
//! Each rule is a pure function from scanned sources (or manifests) to
//! findings. Scoping — which crates a rule polices, which modules are
//! sanctioned exceptions — lives here as explicit constants so a reader
//! can audit the policy at a glance; per-line audited exceptions go in
//! the allowlist file instead (see `allowlist.rs`).

use crate::scan::{find_word, ScannedFile};

/// How severe a finding is: `Error` findings fail the build (exit 1),
/// `Warn` findings are reported but exit 0. Only advisory rules emit
/// warnings — today that is `unbounded_wait` on `lock` sinks, whose
/// deadlock-freedom the `lock_order` rule already proves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warn,
}

impl Severity {
    /// The wire name used by the `--json` and `--github` reporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`safety_comment`, `no_unwrap`, `determinism`,
    /// `thread_confinement`, `shim_hygiene`, `allowlist`).
    pub rule: &'static str,
    /// Build-failing (`Error`) or advisory (`Warn`).
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
    /// The raw source line (for allowlist matching and context).
    pub snippet: String,
    /// For call-graph rules: the evidence chain `entry → … → function`.
    /// Empty for lexical rules.
    pub call_path: Vec<String>,
}

impl Finding {
    /// A finding with no call-path evidence (every lexical rule).
    pub fn lexical(
        rule: &'static str,
        path: String,
        line: usize,
        message: String,
        snippet: String,
    ) -> Self {
        Finding {
            rule,
            severity: Severity::Error,
            path,
            line,
            message,
            snippet,
            call_path: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}{}] {}\n    {}",
            self.path,
            self.line,
            self.rule,
            match self.severity {
                Severity::Error => "",
                Severity::Warn => ":warn",
            },
            self.message,
            self.snippet.trim()
        )?;
        if !self.call_path.is_empty() {
            write!(f, "\n    call path: {}", self.call_path.join(" -> "))?;
        }
        Ok(())
    }
}

/// Crates whose non-test code must not contain `unwrap`/`expect`/`panic!`.
/// These are the crates on the serving hot path, where a panic tears down
/// a daemon thread instead of failing one request. The tensor kernels are
/// listed file-by-file: they sit under every forward pass (including the
/// cross-request batched verify), so a panic there kills the whole batch.
pub const NO_UNWRAP_SCOPE: &[&str] = &[
    "crates/serving/src/",
    "crates/spec/src/",
    "crates/model/src/",
    "crates/tokentree/src/",
    "crates/tensor/src/kernels.rs",
];

/// The one module allowed to read the wall clock: the serving layer's
/// clock shim. Everything else on a deterministic path must take time as
/// an input (the simulated clock) or not at all.
pub const CLOCK_MODULE: &str = "crates/serving/src/clock.rs";

/// Modules sanctioned to create threads: the tensor kernel pool, the
/// data-parallel SSM speculation pool, and the serving daemon/iteration
/// loop. A `thread::spawn` anywhere else is a determinism hazard — its
/// interleaving is unmodelled and untested.
pub const THREAD_SANCTIONED: &[&str] = &[
    "crates/tensor/src/kernels.rs",
    "crates/model/src/transformer.rs",
    "crates/spec/src/speculator.rs",
    "crates/spec/src/batch.rs",
    "crates/serving/src/daemon.rs",
    "crates/serving/src/server.rs",
];

/// Paths exempt from the determinism rule: benchmark binaries (timing is
/// their purpose) and the sanctioned clock module.
const DETERMINISM_EXEMPT: &[&str] = &["crates/bench/", "crates/xtask/", CLOCK_MODULE];

/// Rule 1 — every `unsafe` block or fn carries a `// SAFETY:` comment on
/// the same line or within the three lines above it.
pub fn rule_safety(file: &ScannedFile, out: &mut Vec<Finding>) {
    for (i, line) in file.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_none() {
            continue;
        }
        let lo = i.saturating_sub(3);
        let documented = file.lines[lo..=i]
            .iter()
            .any(|l| l.comment.contains("SAFETY:"));
        if !documented {
            out.push(Finding {
                rule: "safety_comment",
                severity: Severity::Error,
                path: file.path.clone(),
                line: i + 1,
                message: "`unsafe` without a `// SAFETY:` comment stating the aliasing/bounds \
                          argument (within 3 lines above)"
                    .into(),
                snippet: line.raw.clone(),
                call_path: Vec::new(),
            });
        }
    }
}

/// Rule 2 — no `unwrap()` / `expect(` / `panic!` in non-test code of the
/// hot-path crates. `assert!`/`debug_assert!` (loud invariant checks) and
/// `unreachable!` (statically dead arms) remain allowed; fallible paths
/// must use typed errors.
pub fn rule_no_unwrap(file: &ScannedFile, strict: bool, out: &mut Vec<Finding>) {
    if !strict && !NO_UNWRAP_SCOPE.iter().any(|p| file.path.starts_with(p)) {
        return;
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, what) in [
            (".unwrap()", "unwrap() on a hot path"),
            (".expect(", "expect() on a hot path"),
            ("panic!", "explicit panic! on a hot path"),
        ] {
            let hit = if pat == "panic!" {
                find_word(&line.code, pat).is_some()
            } else {
                line.code.contains(pat)
            };
            if hit {
                out.push(Finding {
                    rule: "no_unwrap",
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: i + 1,
                    message: format!(
                        "{what}; return a typed error (or add an audited allowlist entry)"
                    ),
                    snippet: line.raw.clone(),
                    call_path: Vec::new(),
                });
            }
        }
    }
}

/// Rule 3 — determinism: no wall-clock reads or unseeded randomness in
/// library code. Seeded replay (the chaos battery's contract) breaks the
/// moment `Instant::now` or an entropy-seeded RNG reaches a decode path.
pub fn rule_determinism(file: &ScannedFile, strict: bool, out: &mut Vec<Finding>) {
    if !strict {
        let in_lib_scope = (file.path.starts_with("crates/") && file.path.contains("/src/"))
            || file.path.starts_with("src/");
        if !in_lib_scope || DETERMINISM_EXEMPT.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, what) in [
            ("Instant::now", "wall-clock read (`Instant::now`)"),
            ("SystemTime", "wall-clock read (`SystemTime`)"),
            ("thread_rng", "unseeded RNG (`thread_rng`)"),
            ("from_entropy", "entropy-seeded RNG (`from_entropy`)"),
            ("rand::random", "unseeded RNG (`rand::random`)"),
        ] {
            if line.code.contains(pat) {
                out.push(Finding {
                    rule: "determinism",
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: i + 1,
                    message: format!(
                        "{what} outside bench and the clock module breaks seeded replay"
                    ),
                    snippet: line.raw.clone(),
                    call_path: Vec::new(),
                });
            }
        }
    }
}

/// Rule 4 — concurrency confinement: thread creation only in sanctioned
/// pool/daemon modules, where the interleavings are model-checked.
pub fn rule_thread_confinement(file: &ScannedFile, strict: bool, out: &mut Vec<Finding>) {
    if !strict {
        let in_lib_scope = (file.path.starts_with("crates/") && file.path.contains("/src/"))
            || file.path.starts_with("src/");
        if !in_lib_scope
            || file.path.starts_with("crates/xtask/")
            || THREAD_SANCTIONED.contains(&file.path.as_str())
        {
            return;
        }
    }
    for (i, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
            if line.code.contains(pat) {
                out.push(Finding {
                    rule: "thread_confinement",
                    severity: Severity::Error,
                    path: file.path.clone(),
                    line: i + 1,
                    message: format!(
                        "`{pat}` outside the sanctioned pool/daemon modules \
                         ({})",
                        THREAD_SANCTIONED.join(", ")
                    ),
                    snippet: line.raw.clone(),
                    call_path: Vec::new(),
                });
            }
        }
    }
}

/// Rule 5 — shim hygiene over `Cargo.toml`s: every dependency must be
/// `workspace = true` or a `path` that stays inside the repository; no
/// registry (`version = …`) or `git` dependencies may creep in.
pub fn rule_shim_hygiene(path: &str, manifest: &str, out: &mut Vec<Finding>) {
    let manifest_dir = match path.rfind('/') {
        Some(cut) => &path[..cut],
        None => "",
    };
    let mut section = String::new();
    for (i, raw) in manifest.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let in_deps = section.ends_with("dependencies")
            || section.contains("dependencies.")
            || section == "workspace.dependencies";
        if !in_deps {
            continue;
        }
        let mut flag = |message: String| {
            out.push(Finding {
                rule: "shim_hygiene",
                severity: Severity::Error,
                path: path.to_string(),
                line: i + 1,
                message,
                snippet: raw.to_string(),
                call_path: Vec::new(),
            })
        };
        if line.contains("git =") || line.contains("git=") {
            flag("git dependency; all deps must resolve to in-repo shims or crates".into());
            continue;
        }
        if line.contains("version =") || line.contains("version=") {
            flag("registry dependency (`version = …`); use a workspace/path dep instead".into());
            continue;
        }
        // Bare string dep: `name = "1.0"` (key = quoted value, no table).
        if let Some((key, value)) = line.split_once('=') {
            let key = key.trim();
            let value = value.trim();
            let is_dep_key = !key.contains('.')
                && !matches!(
                    key,
                    "features" | "optional" | "default-features" | "package" | "workspace" | "path"
                );
            if is_dep_key && value.starts_with('"') && value.ends_with('"') {
                flag(format!(
                    "registry dependency `{key} = {value}`; use a workspace/path dep instead"
                ));
                continue;
            }
        }
        if let Some(p) = extract_quoted_after(line, "path") {
            if path_escapes_root(manifest_dir, &p) {
                flag(format!(
                    "dependency path `{p}` escapes the repository; shims must stay in-repo"
                ));
            }
        }
    }
}

/// Extracts the quoted value of `key = "…"` from a line, if present.
fn extract_quoted_after(line: &str, key: &str) -> Option<String> {
    let at = find_word(line, key)?;
    let rest = &line[at + key.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Lexically resolves `dep_path` against `manifest_dir` (both
/// workspace-relative, `/`-separated) and reports whether the result
/// climbs out of the workspace root.
fn path_escapes_root(manifest_dir: &str, dep_path: &str) -> bool {
    let mut stack: Vec<&str> = manifest_dir.split('/').filter(|s| !s.is_empty()).collect();
    for seg in dep_path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if stack.pop().is_none() {
                    return true;
                }
            }
            s => stack.push(s),
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn lint_all(path: &str, src: &str) -> Vec<Finding> {
        let f = scan_source(path, src, false);
        let mut out = Vec::new();
        rule_safety(&f, &mut out);
        rule_no_unwrap(&f, false, &mut out);
        rule_determinism(&f, false, &mut out);
        rule_thread_confinement(&f, false, &mut out);
        out
    }

    #[test]
    fn safety_rule_accepts_documented_unsafe() {
        let ok = "// SAFETY: chunks are disjoint by construction.\nunsafe { go() }\n";
        assert!(lint_all("crates/tensor/src/kernels.rs", ok).is_empty());
        let bad = "unsafe { go() }\n";
        let f = lint_all("crates/tensor/src/kernels.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety_comment");
    }

    #[test]
    fn unwrap_rule_scopes_to_hot_crates_and_skips_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let f = lint_all("crates/spec/src/engine.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(lint_all("crates/sim/src/latency.rs", src).is_empty());
    }

    #[test]
    fn panic_in_string_or_comment_is_fine() {
        let src = "fn f() { log(\"panic! avoided\"); } // panic! is bad\n";
        assert!(lint_all("crates/spec/src/engine.rs", src).is_empty());
    }

    #[test]
    fn determinism_rule_exempts_bench_and_clock() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(lint_all("crates/spec/src/engine.rs", src).len(), 1);
        assert!(lint_all("crates/bench/src/report.rs", src).is_empty());
        assert!(lint_all("crates/serving/src/clock.rs", src).is_empty());
    }

    #[test]
    fn thread_rule_sanctions_pool_modules() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(lint_all("crates/workloads/src/text.rs", src).len(), 1);
        assert!(lint_all("crates/serving/src/daemon.rs", src).is_empty());
        assert!(lint_all("crates/tensor/src/kernels.rs", src).is_empty());
    }

    #[test]
    fn unwrap_and_thread_rules_cover_the_batch_and_kernel_surfaces() {
        // `spec/src/batch.rs` (the cross-request batched verifier) is in
        // the hot-path unwrap scope via its crate prefix, and it is a
        // sanctioned thread module: the ragged batch fuses per-session
        // SSM speculation into one data-parallel scoped pass (the fused
        // verify itself still gets its parallelism from the blocked
        // kernels).
        let unwrap_src = "fn f() { x.unwrap(); }\n";
        let scope_src = "fn f() { std::thread::scope(|s| {}); }\n";
        let f = lint_all("crates/spec/src/batch.rs", unwrap_src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no_unwrap");
        assert!(lint_all("crates/spec/src/batch.rs", scope_src).is_empty());
        // A non-sanctioned spec module still may not spawn.
        let f = lint_all("crates/spec/src/engine.rs", scope_src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "thread_confinement");
        // The tensor kernels may spawn (sanctioned pool module) but may
        // not panic — they run under every batched forward.
        let f = lint_all("crates/tensor/src/kernels.rs", unwrap_src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no_unwrap");
        assert!(lint_all("crates/tensor/src/kernels.rs", scope_src).is_empty());
    }

    #[test]
    fn shim_hygiene_flags_registry_git_and_escapes() {
        let m = "[dependencies]\nserde = \"1.0\"\nrand = { git = \"https://x\" }\nfoo = { version = \"0.1\" }\nok = { workspace = true }\nbar = { path = \"../../../outside\" }\n";
        let mut out = Vec::new();
        rule_shim_hygiene("crates/spec/Cargo.toml", m, &mut out);
        let rules: Vec<_> = out.iter().map(|f| f.line).collect();
        assert_eq!(rules, vec![2, 3, 4, 6], "{out:?}");
    }

    #[test]
    fn shim_hygiene_accepts_workspace_and_inrepo_paths() {
        let m = "[workspace.dependencies]\nrand = { path = \"shims/rand\" }\nserde = { path = \"shims/serde\", features = [\"derive\"] }\n\n[dependencies]\nrand.workspace = true\n";
        let mut out = Vec::new();
        rule_shim_hygiene("Cargo.toml", m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn package_version_is_not_a_dependency() {
        let m = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[workspace.package]\nversion = \"0.1.0\"\n";
        let mut out = Vec::new();
        rule_shim_hygiene("Cargo.toml", m, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
