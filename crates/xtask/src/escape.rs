//! Escape/sharing analysis: classifies values as thread-local or
//! potentially shared across threads.
//!
//! The lattice is three-point and flows one way only:
//!
//! ```text
//!   ThreadLocal  ⊑  Exclusive  ⊑  Shared
//! ```
//!
//! - **ThreadLocal** — the value never crosses a thread boundary: it is
//!   not captured by a spawn closure, or it is `move`-captured by
//!   exactly one spawn and never touched again by the owner.
//! - **Exclusive** — the value crosses a thread boundary but through a
//!   partitioning API (`chunks_mut`, `split_at_mut`, `iter_mut`, …)
//!   that hands each thread a disjoint region; writes cannot collide by
//!   construction.
//! - **Shared** — the same storage is reachable from two threads at
//!   once: by-ref captures, bindings captured by several spawn
//!   closures, captures of a spawn inside a loop, `Arc` alias classes,
//!   and non-`Sync`-typed `static` items. Shared values are what
//!   [`crate::race`] pairs accesses over.
//!
//! Sharing **roots** (per the tentpole spec): `static` items,
//! `Arc::new`/`Arc::clone` alias chains, channel `send` payloads
//! (ownership transfer — a happens-before edge, not a race), and
//! closure captures recorded by [`crate::parse`] with their
//! by-ref/by-move mode. The analysis is per-function: captures are
//! bindings of the enclosing `fn`, so the sharing question is always
//! local to one body plus its spawn closures.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;
use crate::parse::{Fact, FnDef, StaticDef, Tok};

/// How a value may be reached from other threads. See the module doc
/// for the lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Sharing {
    ThreadLocal,
    Exclusive,
    Shared,
}

/// A borrowed view of one [`Fact::Closure`], with the fields the
/// concurrency rules care about.
#[derive(Debug, Clone, Copy)]
pub struct Closure<'a> {
    pub line: usize,
    pub end_line: usize,
    pub in_loop: bool,
    pub by_move: bool,
    pub params: &'a [String],
    pub captures: &'a [String],
    pub enclosing_call: Option<&'a str>,
    pub enclosing_recv: &'a str,
    pub body: &'a [Tok],
}

impl Closure<'_> {
    /// Whether `line` falls inside this closure's body span.
    pub fn contains_line(&self, line: usize) -> bool {
        self.line <= line && line <= self.end_line
    }
}

/// All closure facts of a function, in source order.
pub fn closures(f: &FnDef) -> Vec<Closure<'_>> {
    f.facts
        .iter()
        .filter_map(|fact| match fact {
            Fact::Closure {
                line,
                end_line,
                in_loop,
                by_move,
                params,
                captures,
                enclosing_call,
                enclosing_recv,
                body,
            } => Some(Closure {
                line: *line,
                end_line: *end_line,
                in_loop: *in_loop,
                by_move: *by_move,
                params,
                captures,
                enclosing_call: enclosing_call.as_deref(),
                enclosing_recv,
                body,
            }),
            _ => None,
        })
        .collect()
}

/// A closure handed to a `spawn` entry point — it runs on another
/// thread. Covers `scope.spawn`, `std::thread::spawn`, pool `.spawn`
/// and `thread::Builder … .spawn` forms alike.
pub fn is_spawn(c: &Closure<'_>) -> bool {
    c.enclosing_call == Some("spawn")
}

/// The `|scope| …` closure of `std::thread::scope(…)`: it runs on the
/// *calling* thread and joins every spawn it issued before returning
/// (the scope-join happens-before edge).
pub fn is_scope_runner(c: &Closure<'_>) -> bool {
    c.enclosing_call == Some("scope") && c.enclosing_recv.contains("thread")
}

/// Methods that hand out disjoint sub-regions (or immutable views) of a
/// collection: a binding produced by one of these is `Exclusive` — each
/// thread sees a region no other thread can write.
pub const EXCLUSIVE_DERIVERS: &[&str] = &[
    "chunks_mut",
    "chunks_exact_mut",
    "split_at_mut",
    "iter_mut",
    "chunks",
    "chunks_exact",
    "split_at",
    "windows",
    "iter",
];

/// Synchronization entry points: an access that goes *through* one of
/// these is mediated by the primitive itself and is not a raw shared
/// access. (`lock`/`read`/`write` accesses get re-examined by the
/// lockset analysis via their guard binding instead.)
pub const SYNC_METHODS: &[&str] = &[
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "lock",
    "read",
    "write",
    "try_lock",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange",
    "compare_exchange_weak",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
    "join",
    "is_finished",
    "get_or_init",
    "get_or_try_init",
];

/// Collection methods that mutate their receiver in place: a call on a
/// shared receiver is a *write* access.
pub const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "pop",
    "insert",
    "remove",
    "clear",
    "extend",
    "truncate",
    "sort",
    "sort_by",
    "sort_unstable",
    "retain",
    "drain",
    "resize",
    "reserve",
    "append",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
];

/// Whether a `static` item's type makes it safely shareable: interior
/// synchronization (locks, atomics, once-cells) or channel endpoints.
/// Anything else that gets *written* cross-thread is a race candidate.
pub fn sync_static_ty(ty: &str) -> bool {
    [
        "Atomic", "OnceLock", "OnceCell", "LazyLock", "Once", "Mutex", "RwLock", "Condvar",
        "Sender", "Receiver",
    ]
    .iter()
    .any(|t| ty.contains(t))
}

/// Non-`Sync` module-level statics of a file — the race rule's
/// static-rooted shared set.
pub fn racy_statics(statics: &[StaticDef]) -> Vec<&StaticDef> {
    statics
        .iter()
        .filter(|s| !s.in_test && !sync_static_ty(&s.ty))
        .collect()
}

/// Per-function escape facts gathered from a CFG walk (the enclosing
/// body *and* each closure body — closures are absorbed into single
/// parent statements, so partitioning loops inside a scope runner are
/// only visible in the closure's own CFG).
#[derive(Debug, Default)]
pub struct FnEscape {
    /// Bindings derived through an [`EXCLUSIVE_DERIVERS`] call.
    pub exclusive: BTreeSet<String>,
    /// `Arc` alias classes: binding → class representative. Two
    /// bindings in the same class name the same allocation.
    pub arc_class: BTreeMap<String, String>,
    /// Bindings whose ownership was transferred through a channel
    /// `send(x)` — the send→recv pairing is a happens-before edge, so
    /// post-send accesses on the receiving side never race the sender.
    pub sent: BTreeSet<String>,
}

impl FnEscape {
    /// Folds the facts visible in one CFG into the summary.
    pub fn absorb(&mut self, cfg: &Cfg) {
        for block in &cfg.blocks {
            for stmt in &block.stmts {
                // Exclusive derivations, `let`-bound form:
                //   let (a, b) = buf.split_at_mut(k);
                if !stmt.defs.is_empty()
                    && stmt
                        .calls
                        .iter()
                        .any(|c| EXCLUSIVE_DERIVERS.contains(&c.name()))
                {
                    self.exclusive.extend(stmt.defs.iter().cloned());
                }
                // Exclusive derivations, loop-header form (loop headers
                // produce no defs, so match on the joined text):
                //   for (ci, chunk) in out.chunks_mut(n).enumerate() { … }
                if let Some((lhs, rhs)) = stmt.text.split_once(" in ") {
                    if EXCLUSIVE_DERIVERS
                        .iter()
                        .any(|d| rhs.contains(&format!(". {d} (")))
                    {
                        for tok in lhs.split_whitespace() {
                            if tok.chars().next().is_some_and(|c| c.is_lowercase())
                                && tok.chars().all(|c| c.is_alphanumeric() || c == '_')
                                && tok != "for"
                                && tok != "mut"
                                && tok != "in"
                            {
                                self.exclusive.insert(tok.to_string());
                            }
                        }
                    }
                }
                for call in &stmt.calls {
                    // Arc alias chains: `Arc::new` roots a class,
                    // `Arc::clone(&x)` (or `.clone()` on a known-Arc
                    // receiver) joins the clone to the source's class.
                    let is_arc_new = call.path.len() >= 2
                        && call.path[call.path.len() - 2] == "Arc"
                        && call.name() == "new";
                    let is_arc_clone = call.path.len() >= 2
                        && call.path[call.path.len() - 2] == "Arc"
                        && call.name() == "clone";
                    let first_def = stmt.defs.first();
                    if is_arc_new {
                        if let Some(d) = first_def {
                            self.arc_class.entry(d.clone()).or_insert_with(|| d.clone());
                        }
                    } else if is_arc_clone {
                        if let (Some(d), Some(src)) =
                            (first_def, call.args.first().and_then(|a| a.idents.first()))
                        {
                            let rep = self.rep(src);
                            self.arc_class.insert(src.clone(), rep.clone());
                            self.arc_class.insert(d.clone(), rep);
                        }
                    } else if call.is_method && call.name() == "clone" {
                        if let (Some(d), Some(base)) = (first_def, call.recv.first()) {
                            if let Some(rep) = self.arc_class.get(base).cloned() {
                                self.arc_class.insert(d.clone(), rep);
                            }
                        }
                    } else if call.name() == "send" {
                        if let Some(payload) = call.args.first().and_then(|a| a.idents.first()) {
                            self.sent.insert(payload.clone());
                        }
                    }
                }
            }
        }
    }

    /// The alias-class representative of a binding (itself if unknown).
    pub fn rep(&self, name: &str) -> String {
        self.arc_class
            .get(name)
            .cloned()
            .unwrap_or_else(|| name.to_string())
    }

    /// Whether the binding is (an alias of) an `Arc`.
    pub fn is_arc(&self, name: &str) -> bool {
        self.arc_class.contains_key(name)
    }
}

/// Classifies one capture of a spawn closure. `spawn_captures` counts
/// how many *spawn* closures of the fn capture the binding;
/// `owner_touches_after` is true when the owner thread reads or writes
/// the binding at a line past the spawn while it may still be running.
pub fn classify_capture(
    name: &str,
    closure: &Closure<'_>,
    esc: &FnEscape,
    spawn_captures: usize,
    owner_touches_after: bool,
) -> Sharing {
    if esc.exclusive.contains(name) {
        return Sharing::Exclusive;
    }
    // An Arc capture shares the allocation by design — reads are fine,
    // unsynchronized writes through interior mutability are what the
    // access pairing will catch.
    if esc.is_arc(name) {
        return Sharing::Shared;
    }
    if closure.by_move && spawn_captures <= 1 && !closure.in_loop && !owner_touches_after {
        // Moved into exactly one thread, never touched again here:
        // ownership transferred, thread-local on the other side.
        return Sharing::ThreadLocal;
    }
    Sharing::Shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg;
    use crate::parse::{parse_file, ParsedFile};
    use crate::scan::scan_source;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&scan_source("crates/x/src/a.rs", src, true))
    }

    fn escape_of(src: &str) -> FnEscape {
        let p = parse(src);
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let mut esc = FnEscape::default();
        for f in &p.fns {
            esc.absorb(&cfg::build(&f.body, f.line));
            for c in closures(f) {
                esc.absorb(&cfg::build(c.body, c.line));
            }
        }
        esc
    }

    #[test]
    fn chunks_mut_loop_bindings_are_exclusive() {
        let esc = escape_of(
            "fn f(out: &mut [f32]) {\n    for (ci, chunk) in out.chunks_mut(8).enumerate() {\n        work(ci, chunk);\n    }\n}\n",
        );
        assert!(esc.exclusive.contains("ci"), "{esc:?}");
        assert!(esc.exclusive.contains("chunk"));
    }

    #[test]
    fn split_at_mut_let_bindings_are_exclusive() {
        let esc = escape_of(
            "fn f(buf: &mut [f32], k: usize) {\n    let (lo, hi) = buf.split_at_mut(k);\n    work(lo, hi);\n}\n",
        );
        assert!(esc.exclusive.contains("lo"), "{esc:?}");
        assert!(esc.exclusive.contains("hi"));
    }

    #[test]
    fn arc_clone_chains_form_one_alias_class() {
        let esc = escape_of(
            "fn f() {\n    let a = Arc::new(0usize);\n    let b = Arc::clone(&a);\n    let c = b.clone();\n    use_all(a, b, c);\n}\n",
        );
        assert_eq!(esc.rep("b"), esc.rep("a"), "{esc:?}");
        assert_eq!(esc.rep("c"), esc.rep("a"));
        assert!(esc.is_arc("c"));
    }

    #[test]
    fn send_payloads_are_recorded() {
        let esc =
            escape_of("fn f(tx: &Sender<u32>) {\n    let msg = build();\n    tx.send(msg);\n}\n");
        assert!(esc.sent.contains("msg"), "{esc:?}");
    }

    #[test]
    fn exclusive_partition_inside_scope_runner_is_seen() {
        // The partitioning loop lives inside the scope closure; the
        // parent CFG absorbs it, so only the closure CFG exposes it.
        let p = parse(
            "fn f(out: &mut [f32]) {\n    std::thread::scope(|scope| {\n        for chunk in out.chunks_mut(8) {\n            scope.spawn(move || fill(chunk));\n        }\n    });\n}\n",
        );
        let f = &p.fns[0];
        let cls = closures(f);
        assert_eq!(cls.len(), 2, "{cls:?}");
        let runner = cls.iter().find(|c| is_scope_runner(c)).expect("runner");
        let spawn = cls.iter().find(|c| is_spawn(c)).expect("spawn");
        assert!(spawn.in_loop);
        assert!(runner.contains_line(spawn.line));
        let mut esc = FnEscape::default();
        esc.absorb(&cfg::build(runner.body, runner.line));
        assert!(esc.exclusive.contains("chunk"), "{esc:?}");
        assert_eq!(
            classify_capture("chunk", spawn, &esc, 1, false),
            Sharing::Exclusive
        );
    }

    #[test]
    fn loop_captured_binding_is_shared() {
        let p = parse(
            "fn f(pool: &Pool, stats: &mut Stats) {\n    for _i in 0..4 {\n        pool.spawn(move || { stats.hits += 1; });\n    }\n}\n",
        );
        let f = &p.fns[0];
        let cls = closures(f);
        let spawn = cls.iter().find(|c| is_spawn(c)).expect("spawn");
        let esc = FnEscape::default();
        assert_eq!(
            classify_capture("stats", spawn, &esc, 1, false),
            Sharing::Shared
        );
    }

    #[test]
    fn moved_single_capture_is_thread_local() {
        let p = parse("fn f(job: Job) {\n    thread::spawn(move || { run(job); });\n}\n");
        let cls = closures(&p.fns[0]);
        let spawn = cls.iter().find(|c| is_spawn(c)).expect("spawn");
        let esc = FnEscape::default();
        assert_eq!(
            classify_capture("job", spawn, &esc, 1, false),
            Sharing::ThreadLocal
        );
    }

    #[test]
    fn sync_typed_statics_are_exempt() {
        let p = parse(
            "static HITS: AtomicUsize = AtomicUsize::new(0);\nstatic TABLE: Vec<u32> = Vec::new();\n",
        );
        let racy = racy_statics(&p.statics);
        assert_eq!(racy.len(), 1, "{racy:?}");
        assert_eq!(racy[0].name, "TABLE");
    }
}
