//! The four semantic (graph/dataflow) rules, built on [`crate::parse`]
//! and [`crate::callgraph`].
//!
//! Where the lexical rules in [`crate::rules`] police what a *line*
//! says, these police what the *program* can do:
//!
//! - `panic_reachability` — no call path from a serving entry point may
//!   reach a function containing `panic!`/`unwrap`/`expect`/slice
//!   indexing. A panic mid-iteration tears down the daemon and every
//!   batch-mate with it; findings carry the full call path as evidence.
//! - `lock_order` — held-lock sets propagate over the call graph and the
//!   resulting lock-ordering graph must be acyclic (static ABBA
//!   detection; loom-lite explores dynamically what this proves
//!   conservatively).
//! - `hot_loop_alloc` — no allocation inside loops reachable from the
//!   decode/batched-forward/blocked-kernel roots (the allocation-free
//!   decode invariant from PR 1).
//! - `float_reduction_order` — no iterator `sum`/`fold` over floats and
//!   no non-ascending-`k` accumulation in the kernel file: bitwise
//!   determinism (Theorem 4.2's precondition) requires every blocked
//!   kernel to keep a single ascending addition chain per output.
//!
//! Sanctioned exceptions are constants here (auditable policy), per-site
//! exceptions go through the same allowlist as the lexical rules. For
//! `panic_reachability` the allowlist keys off the *function signature
//! line*, so one audited entry covers a function, not a single call
//! site.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::{self, CallGraph, FnNode};
use crate::parse::{Fact, ParsedFile};
use crate::rules::{Finding, Severity};

/// Serving entry points for `panic_reachability` (path suffix, fn name).
/// In strict mode (fixtures) matching is by name alone.
pub const PANIC_ENTRY_POINTS: &[(&str, &str)] = &[
    ("crates/serving/src/daemon.rs", "daemon_loop"),
    ("crates/spec/src/batch.rs", "step_batch"),
    ("crates/spec/src/engine.rs", "try_generate"),
];

/// Files whose structurally-bounded slice indexing is sanctioned: the
/// numeric kernel layer. Every index there is pinned by `debug_assert!`
/// preconditions and the bitwise proptest batteries, and a checked
/// `.get()` in a register-tiled inner loop would cost real throughput.
/// `unwrap`/`expect`/`panic!` still count as panic sites in these files
/// — only indexing is sanctioned.
pub const INDEX_SANCTIONED: &[&str] = &[
    "crates/tensor/src/",
    "crates/model/src/transformer.rs",
    "crates/model/src/kvcache.rs",
];

/// Roots of the allocation-free decode region (path suffix, fn name):
/// the single-token decode path, the batched tree forward, and the
/// blocked attention/matmul kernels under them.
pub const HOT_LOOP_ROOTS: &[(&str, &str)] = &[
    ("crates/model/src/transformer.rs", "decode_one"),
    ("crates/model/src/transformer.rs", "forward_rows_batch"),
    ("crates/model/src/transformer.rs", "attention_block"),
    ("crates/tensor/src/kernels.rs", "matmul_nn_block"),
    ("crates/tensor/src/kernels.rs", "matmul_nt_block"),
];

/// Files where float reduction order is load-bearing: the blocked
/// kernels (single ascending-`k` addition chain makes blocking
/// bitwise-inert) and the SIMD/packed-panel kernels (fixed per-lane
/// ascending-`k` chains plus a deterministic lane-reduction tree make
/// each backend bitwise-reproducible across runs and thread counts).
pub const FLOAT_REDUCTION_SCOPE: &[&str] = &[
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/simd.rs",
    "crates/tensor/src/pack.rs",
];

/// Horizontal-reduction intrinsics whose in-register association order
/// is an ISA artifact, not a documented contract of ours. The sanctioned
/// SIMD reduction pattern spills the lanes and folds them with an
/// explicit pairwise tree (`((l0+l1)+(l2+l3)) + …`), so the order is
/// visible in source and identical on every run. A `hadd`/`addv`-style
/// intrinsic hides that order and invites backend-dependent drift.
const HORIZONTAL_REDUCE_INTRINSICS: &[&str] = &[
    "_mm_hadd_ps",
    "_mm_hadd_pd",
    "_mm256_hadd_ps",
    "_mm256_hadd_pd",
    "_mm512_reduce_add_ps",
    "_mm512_reduce_add_pd",
    "vaddv_f32",
    "vaddvq_f32",
    "vpadd_f32",
    "vpaddq_f32",
];

/// Method names that allocate (receiver-typed allocation sites).
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "collect",
    "push",
];

/// `Type::fn` associated calls that allocate.
const ALLOC_CALLS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Runs the four semantic rules plus parser diagnostics over parsed
/// files. `strict` disables all path-based scoping (fixture mode).
///
/// Convenience wrapper that builds its own call graph; the lint driver
/// builds the graph once (shared with the dataflow rules in
/// [`crate::taint`]) and calls [`semantic_findings_with_graph`] instead.
pub fn semantic_findings(files: &[ParsedFile], strict: bool, out: &mut Vec<Finding>) {
    let graph = callgraph::build(files);
    semantic_findings_with_graph(files, &graph, strict, out);
}

/// The semantic rules over a caller-supplied call graph (built once per
/// lint run and shared across all graph-consuming rules).
pub fn semantic_findings_with_graph(
    files: &[ParsedFile],
    graph: &CallGraph,
    strict: bool,
    out: &mut Vec<Finding>,
) {
    // Parser diagnostics first: a file the parser cannot follow is a
    // file the graph rules silently under-cover, which must be loud.
    for f in files {
        for e in &f.errors {
            out.push(Finding {
                rule: "parse",
                severity: Severity::Error,
                path: f.path.clone(),
                line: e.line,
                message: format!("semantic-lint parser lost sync: {}", e.message),
                snippet: f.raw_line(e.line),
                call_path: Vec::new(),
            });
        }
    }

    let by_path: HashMap<&str, &ParsedFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    rule_panic_reachability(graph, strict, out);
    rule_lock_order(graph, &by_path, out);
    rule_hot_loop_alloc(graph, &by_path, strict, out);
    rule_float_reduction_order(files, strict, out);
}

/// Resolves configured (path-suffix, name) roots against the graph; in
/// strict mode any function with a matching name counts.
pub fn resolve_roots(graph: &CallGraph, roots: &[(&str, &str)], strict: bool) -> Vec<usize> {
    let mut out = Vec::new();
    if strict {
        for (_, name) in roots {
            out.extend(graph.find_all_named(name));
        }
        out.sort_unstable();
        out.dedup();
    } else {
        for (suffix, name) in roots {
            if let Some(i) = graph.find(suffix, name) {
                out.push(i);
            }
        }
    }
    out
}

/// Panic sites of one function: (line, kind) pairs.
fn panic_sites(node: &FnNode, strict: bool) -> Vec<(usize, &'static str)> {
    let index_sanctioned = !strict && INDEX_SANCTIONED.iter().any(|p| node.path.starts_with(p));
    let mut sites = Vec::new();
    for fact in &node.facts {
        match fact {
            Fact::Macro { name, line, .. }
                if name == "panic" || name == "todo" || name == "unimplemented" =>
            {
                sites.push((*line, "panic!-family macro"))
            }
            Fact::Method {
                name,
                zero_args,
                line,
                ..
            } if name == "unwrap" && *zero_args => sites.push((*line, "`.unwrap()`")),
            Fact::Method { name, line, .. } if name == "expect" => {
                sites.push((*line, "`.expect(…)`"))
            }
            Fact::Index { line, .. } if !index_sanctioned => sites.push((*line, "slice index")),
            _ => {}
        }
    }
    sites
}

/// Rule 6 — `panic_reachability`.
fn rule_panic_reachability(graph: &CallGraph, strict: bool, out: &mut Vec<Finding>) {
    let entries = resolve_roots(graph, PANIC_ENTRY_POINTS, strict);
    if entries.is_empty() {
        return;
    }
    let parents = graph.reach_with_parents(&entries);
    let mut reached: Vec<usize> = parents.keys().copied().collect();
    reached.sort_unstable();
    for i in reached {
        let node = &graph.fns[i];
        let sites = panic_sites(node, strict);
        if sites.is_empty() {
            continue;
        }
        // Aggregate sites by kind for a compact message; the finding
        // anchors on the function signature so one audited allowlist
        // entry covers the function.
        let mut by_kind: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
        for (line, kind) in &sites {
            by_kind.entry(kind).or_default().push(*line);
        }
        let desc: Vec<String> = by_kind
            .iter()
            .map(|(kind, lines)| {
                if lines.len() == 1 {
                    format!("{kind} at line {}", lines[0])
                } else {
                    format!("{}x {kind} (first at line {})", lines.len(), lines[0])
                }
            })
            .collect();
        let call_path = graph.path_to(&parents, i);
        let entry_label = call_path.first().cloned().unwrap_or_default();
        out.push(Finding {
            rule: "panic_reachability",
            severity: Severity::Error,
            path: node.path.clone(),
            line: node.line,
            message: format!(
                "`{}` is reachable from serving entry `{}` and can panic: {}; \
                 return a typed error, rewrite the arm as `match … unreachable!`, \
                 or add an audited allowlist entry keyed on this signature",
                node.label(),
                entry_label,
                desc.join(", ")
            ),
            snippet: node.sig.clone(),
            call_path,
        });
    }
}

/// A lock acquisition from a `Fact::Method`, if the fact is one.
/// `Mutex::lock`, `RwLock::read`/`write` all take **zero arguments** —
/// which is also what separates them from `io::Read::read(buf)` and
/// `io::Write::write(buf)`.
fn lock_acquisition(node: &FnNode, fact: &Fact) -> Option<(String, usize)> {
    let Fact::Method {
        name,
        recv,
        zero_args,
        line,
        ..
    } = fact
    else {
        return None;
    };
    if !zero_args || !matches!(name.as_str(), "lock" | "read" | "write") || recv.is_empty() {
        return None;
    }
    let lock_name = if recv[0] == "self" {
        if recv.len() == 1 {
            return None; // `self.lock()` — not a field-held lock
        }
        match &node.owner {
            Some(o) => format!("{}.{}", o, recv[1..].join(".")),
            None => recv[1..].join("."),
        }
    } else {
        recv.join(".")
    };
    Some((lock_name, *line))
}

/// Rule 7 — `lock_order`: static ABBA detection.
fn rule_lock_order(
    graph: &CallGraph,
    by_path: &HashMap<&str, &ParsedFile>,
    out: &mut Vec<Finding>,
) {
    // 1. Direct acquisitions per function, in source order.
    let n = graph.fns.len();
    let mut direct: Vec<Vec<(String, usize)>> = vec![Vec::new(); n];
    for (i, node) in graph.fns.iter().enumerate() {
        for fact in &node.facts {
            if let Some(acq) = lock_acquisition(node, fact) {
                direct[i].push(acq);
            }
        }
    }

    // 2. Transitive "locks this call may acquire" sets, to fixpoint
    //    (cycles in the call graph converge because sets only grow).
    //    Only *certain* edges participate: propagating locks through a
    //    method-name over-approximation manufactures ABBA cycles out of
    //    call edges no execution can take (e.g. `sched.submit(…)`
    //    name-matching a `Server` method that locks).
    let mut locks_in: Vec<BTreeSet<String>> = direct
        .iter()
        .map(|v| v.iter().map(|(l, _)| l.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..n {
            for e in graph.edges[i].iter().filter(|e| e.certain) {
                let add: Vec<String> = locks_in[e.callee]
                    .iter()
                    .filter(|l| !locks_in[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    locks_in[i].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Lock-order edges L→M with evidence: "while holding L, fn f at
    //    line … acquires (or calls into something that acquires) M".
    //    Conservative: a guard is assumed held until the function ends.
    let mut ledges: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for (i, node) in graph.fns.iter().enumerate() {
        let mut held: Vec<String> = Vec::new();
        for fact in &node.facts {
            if let Some((m, line)) = lock_acquisition(node, fact) {
                for l in &held {
                    if *l != m {
                        ledges.entry((l.clone(), m.clone())).or_insert((i, line));
                    }
                }
                if !held.contains(&m) {
                    held.push(m);
                }
                continue;
            }
            if held.is_empty() {
                continue;
            }
            let line = fact.line();
            for e in graph.edges[i]
                .iter()
                .filter(|e| e.certain && e.line == line)
            {
                for m in &locks_in[e.callee] {
                    for l in &held {
                        if l != m {
                            ledges.entry((l.clone(), m.clone())).or_insert((i, line));
                        }
                    }
                }
            }
        }
    }

    // 4. Cycle detection over the lock-order graph.
    let mut nodes: Vec<String> = ledges.keys().map(|(a, _)| a.clone()).collect();
    nodes.extend(ledges.keys().map(|(_, b)| b.clone()));
    nodes.sort();
    nodes.dedup();
    let succ: BTreeMap<String, Vec<String>> = {
        let mut m: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (a, b) in ledges.keys() {
            m.entry(a.clone()).or_default().push(b.clone());
        }
        m
    };
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in &nodes {
        // DFS with an explicit stack path, small graphs only.
        let mut path: Vec<String> = vec![start.clone()];
        dfs_cycles(
            &succ,
            &mut path,
            &mut reported,
            &ledges,
            graph,
            by_path,
            out,
        );
    }
}

fn dfs_cycles(
    succ: &BTreeMap<String, Vec<String>>,
    path: &mut Vec<String>,
    reported: &mut BTreeSet<Vec<String>>,
    ledges: &BTreeMap<(String, String), (usize, usize)>,
    graph: &CallGraph,
    by_path: &HashMap<&str, &ParsedFile>,
    out: &mut Vec<Finding>,
) {
    let cur = path.last().cloned().unwrap_or_default();
    let Some(nexts) = succ.get(&cur) else { return };
    for next in nexts {
        if let Some(at) = path.iter().position(|p| p == next) {
            // Cycle: path[at..] + next. Canonicalize by rotating the
            // smallest lock name to the front so each cycle reports once.
            let cyc: Vec<String> = path[at..].iter().map(|s| (*s).clone()).collect();
            let min_at = cyc
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.as_str())
                .map(|(k, _)| k)
                .unwrap_or(0);
            let mut canon = cyc[min_at..].to_vec();
            canon.extend_from_slice(&cyc[..min_at]);
            if !reported.insert(canon.clone()) {
                continue;
            }
            let mut evidence = Vec::new();
            let mut first_site: Option<(usize, usize)> = None;
            for w in 0..canon.len() {
                let a = &canon[w];
                let b = &canon[(w + 1) % canon.len()];
                if let Some(&(f, line)) = ledges.get(&(a.clone(), b.clone())) {
                    let node = &graph.fns[f];
                    evidence.push(format!(
                        "`{}` -> `{}` (in `{}` at {}:{})",
                        a,
                        b,
                        node.label(),
                        node.path,
                        line
                    ));
                    if first_site.is_none() {
                        first_site = Some((f, line));
                    }
                }
            }
            let (f, line) = first_site.unwrap_or((0, 0));
            let node = &graph.fns[f];
            let snippet = by_path
                .get(node.path.as_str())
                .map(|p| p.raw_line(line))
                .unwrap_or_default();
            let mut call_path = canon.clone();
            call_path.push(canon[0].clone());
            out.push(Finding {
                rule: "lock_order",
                // Advisory: the static cycle is over may-alias lock
                // names, so it deserves an eye rather than a red build —
                // and the `--github` reporter maps it to `::warning`
                // instead of `::error` accordingly.
                severity: Severity::Warn,
                path: node.path.clone(),
                line,
                message: format!(
                    "lock-order cycle ({}); acquire locks in one global order or \
                     drop the first guard before taking the second",
                    evidence.join("; ")
                ),
                snippet,
                call_path,
            });
            continue;
        }
        path.push(next.clone());
        dfs_cycles(succ, path, reported, ledges, graph, by_path, out);
        path.pop();
    }
}

/// Whether a fact is an allocation, and what to call it.
fn alloc_kind(fact: &Fact) -> Option<(String, usize, bool)> {
    match fact {
        Fact::Call {
            path,
            line,
            in_loop,
        } => {
            if path.len() >= 2 {
                let t = &path[path.len() - 2];
                let f = &path[path.len() - 1];
                if ALLOC_CALLS
                    .iter()
                    .any(|(ct, cf)| *ct == t.as_str() && *cf == f.as_str())
                {
                    return Some((format!("{t}::{f}"), *line, *in_loop));
                }
            }
            None
        }
        Fact::Method {
            name,
            line,
            in_loop,
            ..
        } if ALLOC_METHODS.contains(&name.as_str()) => {
            Some((format!(".{name}(…)"), *line, *in_loop))
        }
        Fact::Macro {
            name,
            line,
            in_loop,
        } if ALLOC_MACROS.contains(&name.as_str()) => Some((format!("{name}!"), *line, *in_loop)),
        _ => None,
    }
}

/// Rule 8 — `hot_loop_alloc`: the allocation-free decode invariant.
fn rule_hot_loop_alloc(
    graph: &CallGraph,
    by_path: &HashMap<&str, &ParsedFile>,
    strict: bool,
    out: &mut Vec<Finding>,
) {
    let roots = resolve_roots(graph, HOT_LOOP_ROOTS, strict);
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach_with_parents(&roots);

    // Functions reached *through an in-loop call edge* execute once per
    // loop iteration: any allocation there is a per-iteration
    // allocation, looped locally or not. BFS over (fn, looped) states.
    let mut looped: BTreeSet<usize> = BTreeSet::new();
    {
        let mut seen: BTreeSet<(usize, bool)> = BTreeSet::new();
        let mut q: Vec<(usize, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((u, ctx)) = q.pop() {
            if !seen.insert((u, ctx)) {
                continue;
            }
            if ctx {
                looped.insert(u);
            }
            for e in &graph.edges[u] {
                q.push((e.callee, ctx || e.in_loop));
            }
        }
    }

    let mut reached: Vec<usize> = parents.keys().copied().collect();
    reached.sort_unstable();
    for i in reached {
        let node = &graph.fns[i];
        let per_iteration = looped.contains(&i);
        for fact in &node.facts {
            let Some((what, line, in_loop)) = alloc_kind(fact) else {
                continue;
            };
            if !in_loop && !per_iteration {
                continue;
            }
            let why = if in_loop {
                "inside a loop"
            } else {
                "in a function called from a loop"
            };
            let call_path = graph.path_to(&parents, i);
            out.push(Finding {
                rule: "hot_loop_alloc",
                severity: Severity::Error,
                path: node.path.clone(),
                line,
                message: format!(
                    "allocation `{}` {} on the allocation-free decode path \
                     (reachable from `{}`); hoist it into a scratch buffer or \
                     precompute it outside the loop",
                    what,
                    why,
                    call_path.first().cloned().unwrap_or_default()
                ),
                snippet: by_path
                    .get(node.path.as_str())
                    .map(|p| p.raw_line(line))
                    .unwrap_or_default(),
                call_path,
            });
        }
    }
}

/// Rule 9 — `float_reduction_order`: bitwise-inert blocking needs one
/// ascending-`k` addition chain per output. Iterator `sum`/`fold` hide
/// their association order behind the iterator, reversed/stepped
/// accumulation loops change it outright, and horizontal-add intrinsics
/// (`_mm256_hadd_ps`, `vaddvq_f32`, …) bury it inside the ISA. SIMD
/// kernels must use fixed per-lane ascending-`k` chains folded by an
/// explicit pairwise lane tree instead. Only functions whose signature
/// mentions `f32`/`f64` are checked — integer reductions are exact in
/// any order.
fn rule_float_reduction_order(files: &[ParsedFile], strict: bool, out: &mut Vec<Finding>) {
    for f in files {
        if !strict && !FLOAT_REDUCTION_SCOPE.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        for d in &f.fns {
            if d.in_test || !(d.sig.contains("f32") || d.sig.contains("f64")) {
                continue;
            }
            for fact in &d.facts {
                let (line, what) = match fact {
                    Fact::Method { name, line, .. } if name == "sum" => {
                        (*line, "iterator `.sum()` hides the reduction order")
                    }
                    Fact::Method { name, line, .. } if name == "fold" => {
                        (*line, "iterator `.fold(…)` hides the reduction order")
                    }
                    Fact::NonAscendingAccum { line } => (
                        *line,
                        "non-ascending accumulation (`.rev()`/`.step_by(…)` feeding `+=`)",
                    ),
                    Fact::Call { path, line, .. }
                        if path.last().is_some_and(|f| {
                            HORIZONTAL_REDUCE_INTRINSICS.contains(&f.as_str())
                        }) =>
                    {
                        (
                            *line,
                            "horizontal-reduce intrinsic hides the lane association order; \
                             spill lanes and fold them with an explicit pairwise tree",
                        )
                    }
                    _ => continue,
                };
                out.push(Finding {
                    rule: "float_reduction_order",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line,
                    message: format!(
                        "{what}; kernels must accumulate with an explicit ascending-`k` \
                         loop so blocked and unblocked paths stay bitwise-identical \
                         (Theorem 4.2 precondition)"
                    ),
                    snippet: f.raw_line(line),
                    call_path: Vec::new(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    fn run(files: &[(&str, &str)], strict: bool) -> Vec<Finding> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| crate::parse::parse_file(&scan_source(p, s, true)))
            .collect();
        let mut out = Vec::new();
        semantic_findings(&parsed, strict, &mut out);
        out
    }

    #[test]
    fn panic_reachability_reports_full_call_path() {
        let out = run(
            &[(
                "crates/spec/src/batch.rs",
                "pub fn step_batch() { mid(); }\nfn mid() { leaf(0); }\nfn leaf(i: usize) { let v = [1, 2]; let _ = v[i]; }\n",
            )],
            false,
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "panic_reachability");
        assert_eq!(out[0].call_path, vec!["step_batch", "mid", "leaf"]);
        assert!(out[0].message.contains("slice index"), "{}", out[0].message);
        assert_eq!(out[0].line, 3, "anchors on the fn signature");
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let out = run(
            &[(
                "crates/spec/src/batch.rs",
                "pub fn step_batch() { fine(); }\nfn fine() {}\nfn island() { boom.unwrap(); }\n",
            )],
            false,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn index_sanctioned_files_skip_indexing_but_not_unwrap() {
        let src = "pub fn helper(v: &[f32], i: usize) { let _ = v[i]; opt.unwrap(); }\npub fn step_batch(v: &[f32]) { crate::kernels::helper(v, 0); }\n";
        // In the kernel file, only the unwrap counts.
        let out = run(
            &[
                ("crates/tensor/src/kernels.rs", src),
                (
                    "crates/spec/src/batch.rs",
                    "pub fn step_batch(v: &[f32]) { specinfer_tensor::kernels::helper(v, 0); }\n",
                ),
            ],
            false,
        );
        let f: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "panic_reachability")
            .collect();
        assert_eq!(f.len(), 1, "{out:#?}");
        assert!(f[0].message.contains("unwrap"));
        assert!(!f[0].message.contains("slice index"));
    }

    #[test]
    fn lock_order_flags_abba_with_evidence() {
        let out = run(
            &[(
                "crates/serving/src/server.rs",
                "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n    fn ba(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n}\n",
            )],
            false,
        );
        let f: Vec<_> = out.iter().filter(|f| f.rule == "lock_order").collect();
        assert_eq!(f.len(), 1, "one canonical cycle: {out:#?}");
        assert!(f[0].message.contains("S.a"), "{}", f[0].message);
        assert!(f[0].message.contains("S.b"), "{}", f[0].message);
        assert_eq!(f[0].call_path, vec!["S.a", "S.b", "S.a"]);
    }

    #[test]
    fn lock_order_propagates_through_calls() {
        let out = run(
            &[(
                "crates/serving/src/server.rs",
                "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) { let _x = self.a.lock(); self.take_b(); }\n    fn take_b(&self) { let _y = self.b.lock(); }\n    fn ba(&self) { let _y = self.b.lock(); let _x = self.a.lock(); }\n}\n",
            )],
            false,
        );
        assert!(
            out.iter().any(|f| f.rule == "lock_order"),
            "cycle through a callee must be found: {out:#?}"
        );
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let out = run(
            &[(
                "crates/serving/src/server.rs",
                "struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    fn ab(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n    fn ab2(&self) { let _x = self.a.lock(); let _y = self.b.lock(); }\n}\n",
            )],
            false,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn io_read_write_with_args_are_not_locks() {
        let out = run(
            &[(
                "crates/serving/src/server.rs",
                "struct S { sock: TcpStream, log: File }\nimpl S {\n    fn io(&mut self, buf: &mut [u8]) { self.sock.read(buf); self.log.write(buf); }\n}\n",
            )],
            false,
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn hot_loop_alloc_flags_in_loop_and_callee_allocs() {
        let out = run(
            &[(
                "crates/model/src/transformer.rs",
                "pub fn decode_one(n: usize) {\n    let setup = Vec::with_capacity(n);\n    for i in 0..n {\n        let tmp = vec![0u8; 4];\n        helper(i);\n    }\n}\nfn helper(i: usize) { let s = Vec::new(); }\n",
            )],
            false,
        );
        let f: Vec<_> = out.iter().filter(|f| f.rule == "hot_loop_alloc").collect();
        assert_eq!(
            f.len(),
            2,
            "vec! in loop + Vec::new in looped callee: {out:#?}"
        );
        assert!(f.iter().any(|x| x.message.contains("vec!")));
        assert!(f.iter().any(|x| x.message.contains("Vec::new")));
        assert!(f.iter().all(|x| !x.snippet.contains("with_capacity")));
    }

    #[test]
    fn setup_allocations_outside_loops_are_fine() {
        let out = run(
            &[(
                "crates/model/src/transformer.rs",
                "pub fn decode_one(n: usize) {\n    let mut out = Vec::with_capacity(n);\n    helper(&mut out);\n    for i in 0..n { step(i); }\n}\nfn helper(v: &mut Vec<u8>) { v.push(0); }\nfn step(i: usize) {}\n",
            )],
            false,
        );
        assert!(
            out.is_empty(),
            "helper is not called from the loop: {out:#?}"
        );
    }

    #[test]
    fn float_reduction_scope_and_f32_gate() {
        let kernels = "pub fn dot(a: &[f32], b: &[f32]) -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() }\npub fn count(a: &[u64]) -> u64 { a.iter().sum() }\n";
        let out = run(&[("crates/tensor/src/kernels.rs", kernels)], false);
        let f: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "float_reduction_order")
            .collect();
        assert_eq!(f.len(), 1, "integer sum is exact in any order: {out:#?}");
        // Same code outside the kernel file: out of scope.
        let out = run(&[("crates/model/src/sampler.rs", kernels)], false);
        assert!(
            out.iter().all(|f| f.rule != "float_reduction_order"),
            "{out:#?}"
        );
    }

    #[test]
    fn horizontal_reduce_intrinsics_flagged_in_simd_scope() {
        // `hadd`-style intrinsics hide the lane association order: flagged,
        // whether called bare or through a fully-qualified path.
        let bad = "pub fn tail(acc: f32) -> f32 { let h = _mm256_hadd_ps(acc, acc); core::arch::aarch64::vaddvq_f32(h) }\n";
        let out = run(&[("crates/tensor/src/simd.rs", bad)], false);
        let f: Vec<_> = out
            .iter()
            .filter(|f| f.rule == "float_reduction_order")
            .collect();
        assert_eq!(f.len(), 2, "{out:#?}");
        // The sanctioned pattern — spill lanes, fold with an explicit
        // pairwise tree, ascending mul_add tail — stays clean.
        let good = "pub fn tree(lanes: &[f32; 8]) -> f32 { ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7])) }\n";
        let out = run(&[("crates/tensor/src/pack.rs", good)], false);
        assert!(
            out.iter().all(|f| f.rule != "float_reduction_order"),
            "{out:#?}"
        );
    }

    #[test]
    fn strict_mode_matches_roots_by_name() {
        let out = run(
            &[(
                "anywhere/fixture.rs",
                "pub fn step_batch() { helper(); }\nfn helper() { x.unwrap(); }\n",
            )],
            true,
        );
        assert!(
            out.iter().any(|f| f.rule == "panic_reachability"),
            "{out:#?}"
        );
    }
}
