//! A small worklist abstract-interpretation engine over [`crate::cfg`]
//! graphs.
//!
//! The engine is direction-agnostic: [`solve_forward`] propagates
//! block-entry states along successor edges, [`solve_backward`] along
//! predecessor edges. States are any `Clone + PartialEq` lattice value;
//! the caller supplies the join (least upper bound) and the per-block
//! transfer function. Termination is the caller's obligation in
//! principle (finite-height lattices), but every client in this crate
//! uses finite sets of identifiers, where the fixpoint is reached in at
//! most `|blocks| · |vars|` iterations. A hard iteration cap turns a
//! non-converging lattice into a conservative stop instead of a hang.
//!
//! Interprocedural propagation does not live here: [`crate::taint`]
//! runs this engine per function and stitches functions together with
//! call-site summaries along `certain` call-graph edges, carrying
//! k-bounded call strings as evidence.

use crate::cfg::Cfg;

/// Iteration cap: generous for any real function (the workspace's
/// largest CFGs are well under 200 blocks).
const MAX_PASSES: usize = 10_000;

/// Forward fixpoint. Returns the state at each block's *entry*.
///
/// `init` seeds the entry block; every other block starts from
/// `bottom`. `transfer(block, in_state)` computes the block's exit
/// state; `join` merges exit states flowing into a block.
pub fn solve_forward<S, FJ, FT>(cfg: &Cfg, bottom: S, init: S, join: FJ, transfer: FT) -> Vec<S>
where
    S: Clone + PartialEq,
    FJ: Fn(&S, &S) -> S,
    FT: Fn(usize, &S) -> S,
{
    let n = cfg.blocks.len();
    let mut in_states = vec![bottom; n];
    in_states[cfg.entry] = init;
    let order = cfg.rpo();
    let mut passes = 0usize;
    loop {
        let mut changed = false;
        for &b in &order {
            let out = transfer(b, &in_states[b]);
            for &s in &cfg.blocks[b].succs {
                let merged = join(&in_states[s], &out);
                if merged != in_states[s] {
                    in_states[s] = merged;
                    changed = true;
                }
            }
        }
        passes += 1;
        if !changed || passes >= MAX_PASSES {
            return in_states;
        }
    }
}

/// Backward fixpoint. Returns the state at each block's *exit*.
///
/// `init` seeds the exit block. `transfer(block, out_state)` computes
/// the block's entry state, which then joins into each predecessor's
/// exit state.
pub fn solve_backward<S, FJ, FT>(cfg: &Cfg, bottom: S, init: S, join: FJ, transfer: FT) -> Vec<S>
where
    S: Clone + PartialEq,
    FJ: Fn(&S, &S) -> S,
    FT: Fn(usize, &S) -> S,
{
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    let mut out_states = vec![bottom; n];
    out_states[cfg.exit] = init;
    let mut order = cfg.rpo();
    order.reverse(); // post-order converges fastest backwards
    let mut passes = 0usize;
    loop {
        let mut changed = false;
        for &b in &order {
            let entry = transfer(b, &out_states[b]);
            for &p in &preds[b] {
                let merged = join(&out_states[p], &entry);
                if merged != out_states[p] {
                    out_states[p] = merged;
                    changed = true;
                }
            }
        }
        passes += 1;
        if !changed || passes >= MAX_PASSES {
            return out_states;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, StmtKind};
    use crate::parse::parse_file;
    use crate::scan::scan_source;
    use std::collections::BTreeSet;

    fn cfg_of(body: &str) -> crate::cfg::Cfg {
        let src = format!("fn f(n: usize) {{\n{body}\n}}\n");
        let p = parse_file(&scan_source("crates/x/src/a.rs", &src, true));
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        build(&p.fns[0].body, p.fns[0].line)
    }

    type Vars = BTreeSet<String>;

    fn union(a: &Vars, b: &Vars) -> Vars {
        a.union(b).cloned().collect()
    }

    #[test]
    fn forward_taint_reaches_through_branches_and_joins() {
        // `n` is tainted at entry; `a` picks it up in one branch only,
        // so at the join both `n` and `a` are tainted (may-analysis).
        let cfg = cfg_of("let mut a = 0;\nif n > 1 { a = n; } else { a = 2; }\nsink(a);");
        let mut seed = Vars::new();
        seed.insert("n".into());
        let states = solve_forward(&cfg, Vars::new(), seed, union, |b, s| {
            let mut out = s.clone();
            for stmt in &cfg.blocks[b].stmts {
                let gen = stmt.uses.iter().any(|u| out.contains(u));
                for d in &stmt.defs {
                    if gen {
                        out.insert(d.clone());
                    } else if !stmt.weak_def {
                        out.remove(d);
                    }
                }
            }
            out
        });
        let sink_block = (0..cfg.blocks.len())
            .find(|b| {
                cfg.blocks[*b]
                    .stmts
                    .iter()
                    .any(|s| s.calls.iter().any(|c| c.name() == "sink"))
            })
            .expect("sink block");
        assert!(states[sink_block].contains("a"), "{states:#?}");
        assert!(states[sink_block].contains("n"));
    }

    #[test]
    fn forward_strong_update_kills_taint_on_every_path() {
        let cfg = cfg_of("let mut a = n;\na = 0;\nsink(a);");
        let mut seed = Vars::new();
        seed.insert("n".into());
        let states = solve_forward(&cfg, Vars::new(), seed, union, |b, s| {
            let mut out = s.clone();
            for stmt in &cfg.blocks[b].stmts {
                let gen = stmt.uses.iter().any(|u| out.contains(u));
                for d in &stmt.defs {
                    if gen {
                        out.insert(d.clone());
                    } else if !stmt.weak_def {
                        out.remove(d);
                    }
                }
            }
            out
        });
        // All statements share the entry block; run the transfer to the
        // end and check `a` was re-killed by the constant store.
        let mut out = states[cfg.entry].clone();
        for stmt in &cfg.blocks[cfg.entry].stmts {
            let gen = stmt.uses.iter().any(|u| out.contains(u));
            for d in &stmt.defs {
                if gen {
                    out.insert(d.clone());
                } else if !stmt.weak_def {
                    out.remove(d);
                }
            }
        }
        assert!(!out.contains("a"), "{out:?}");
    }

    #[test]
    fn backward_liveness_flows_uses_up_through_the_loop() {
        // `acc` is used after the loop, so it is live at the loop header
        // and at entry.
        let cfg = cfg_of("let mut acc = 0;\nwhile n > 0 { acc = acc + bump(); }\nsink(acc);");
        let states = solve_backward(&cfg, Vars::new(), Vars::new(), union, |b, out| {
            let mut live = out.clone();
            for stmt in cfg.blocks[b].stmts.iter().rev() {
                if !stmt.weak_def {
                    for d in &stmt.defs {
                        live.remove(d);
                    }
                }
                for u in &stmt.uses {
                    live.insert(u.clone());
                }
            }
            live
        });
        let header = (0..cfg.blocks.len())
            .find(|b| {
                cfg.blocks[*b]
                    .stmts
                    .iter()
                    .any(|s| s.kind == StmtKind::LoopHeader)
            })
            .expect("header");
        assert!(states[header].contains("acc"), "{states:#?}");
    }
}
