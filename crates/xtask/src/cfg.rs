//! Per-function control-flow graphs over the [`crate::parse`] token
//! stream.
//!
//! The builder recognises exactly the control constructs the dataflow
//! rules need — `if`/`else if`/`else`, `match` arms, `for`/`while`/
//! `loop` with `break`/`continue`, and early `return` — and collapses
//! everything else into straight-line statements summarised by
//! [`Stmt`]: definitions, uses, call sites with per-argument detail,
//! index expressions, and taint-source reads. Statements that the
//! builder cannot split (closures, nested struct literals) are absorbed
//! whole, which only ever *unions* behaviour into one program point —
//! a sound over-approximation for the forward analyses in
//! [`crate::taint`].
//!
//! Invariants (pinned by the `cfg_battery` proptest suite):
//! - exactly one entry block, index 0, with no predecessors created by
//!   the builder (back edges from loops may target it only if the
//!   function body *starts* with a loop header — the battery allows
//!   entry preds but requires entry reachability trivially);
//! - every block is reachable from the entry (unreachable blocks are
//!   pruned after construction);
//! - the iterative dominator computation agrees with a naive O(n²)
//!   set-intersection reference.

use crate::parse::{Tok, TokKind};

/// How a statement participates in control flow — used by the taint
/// rules to recognise validation guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// Straight-line statement (let, assignment, expression).
    Plain,
    /// An `if`/`else if` condition.
    Cond,
    /// A `while`/`for` loop header.
    LoopHeader,
    /// A `match` scrutinee.
    MatchHead,
    /// A `match` arm pattern (including any `if` guard tokens).
    Pattern,
    /// A `return`/`break`/`continue` statement.
    Jump,
}

/// One call site inside a statement.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub line: usize,
    /// Path segments for `a::b::f(…)` (callee last); `[name]` for
    /// method calls.
    pub path: Vec<String>,
    pub is_method: bool,
    /// Receiver identifier chain for method calls (`["self","rx"]`).
    pub recv: Vec<String>,
    /// Per-argument summaries, split at depth-0 commas.
    pub args: Vec<ArgInfo>,
}

impl CallSite {
    /// The bare callee name.
    pub fn name(&self) -> &str {
        self.path.last().map_or("", |s| s.as_str())
    }
}

/// One argument of a call: the identifiers it reads plus its joined
/// token text (for sanitizer pattern checks like `.min(`).
#[derive(Debug, Clone, Default)]
pub struct ArgInfo {
    pub idents: Vec<String>,
    pub text: String,
}

/// A slice/array index expression and the tokens inside the brackets.
#[derive(Debug, Clone)]
pub struct IndexSite {
    pub line: usize,
    /// Joined text of the tokens between `[` and `]`.
    pub expr: String,
    /// Depth-0 operator tokens inside the brackets.
    pub ops: Vec<String>,
}

/// An untrusted-size source read inside a statement (field read, method
/// on a request-ish receiver, env parse). The taint rule decides which
/// reads count; the CFG only records the raw observations.
#[derive(Debug, Clone)]
pub struct SourceRead {
    pub line: usize,
    /// What was read: field or method name (`max_new_tokens`, `len`).
    pub what: String,
    /// Receiver chain for the read, empty for path calls.
    pub recv: Vec<String>,
}

/// A straight-line statement summary.
#[derive(Debug, Clone)]
pub struct Stmt {
    pub line: usize,
    pub kind: StmtKind,
    /// Binding names this statement (re)defines.
    pub defs: Vec<String>,
    /// True when the definition is a field/index write (`x.f = …`):
    /// the base binding becomes tainted but is never *killed*.
    pub weak_def: bool,
    /// Identifier reads (locals/params; path segments and callee names
    /// excluded).
    pub uses: Vec<String>,
    pub calls: Vec<CallSite>,
    /// Macro invocations (`assert`, `vec`, …).
    pub macros: Vec<String>,
    pub indexes: Vec<IndexSite>,
    pub sources: Vec<SourceRead>,
    /// Whether the statement contains a comparison operator at any
    /// depth — combined with `kind` to recognise bounds guards.
    pub has_comparison: bool,
    /// Whitespace-joined token text, for sanitizer substring checks.
    pub text: String,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Source line of the first token that entered the block (0 for
    /// synthetic join/exit blocks until a statement lands).
    pub line: usize,
    pub stmts: Vec<Stmt>,
    pub succs: Vec<usize>,
}

/// A per-function control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub blocks: Vec<Block>,
    /// Always 0 after construction.
    pub entry: usize,
    pub exit: usize,
}

impl Cfg {
    /// Predecessor lists derived from `succs`.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Reverse postorder over successor edges from the entry.
    pub fn rpo(&self) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit phase marker to emit postorder.
        let mut stack = vec![(self.entry, 0usize)];
        seen[self.entry] = true;
        while let Some((b, child)) = stack.pop() {
            let succs = &self.blocks[b].succs;
            if child < succs.len() {
                stack.push((b, child + 1));
                let s = succs[child];
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
            }
        }
        post.reverse();
        post
    }
}

/// Builds the CFG for one function body (tokens exclusive of the outer
/// braces). Total: any token sequence produces a well-formed graph.
pub fn build(body: &[Tok], fn_line: usize) -> Cfg {
    let mut b = Builder {
        toks: body,
        blocks: vec![Block::default(), Block::default()],
    };
    b.blocks[ENTRY].line = fn_line;
    b.blocks[EXIT].line = fn_line;
    let mut loops = Vec::new();
    let mut i = 0usize;
    let last = b.seq(&mut i, body.len(), ENTRY, &mut loops);
    b.edge(last, EXIT);
    prune(Cfg {
        blocks: b.blocks,
        entry: ENTRY,
        exit: EXIT,
    })
}

const ENTRY: usize = 0;
const EXIT: usize = 1;

/// Drops blocks unreachable from the entry and remaps edge indices.
/// The exit always survives: the builder gives it an in-edge from the
/// final fallthrough block and from every `return`.
fn prune(cfg: Cfg) -> Cfg {
    let n = cfg.blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![cfg.entry];
    reach[cfg.entry] = true;
    while let Some(b) = stack.pop() {
        for &s in &cfg.blocks[b].succs {
            if !reach[s] {
                reach[s] = true;
                stack.push(s);
            }
        }
    }
    reach[cfg.exit] = true; // keep exit even for `loop {}` bodies
    let mut remap = vec![usize::MAX; n];
    let mut blocks = Vec::new();
    for (i, keep) in reach.iter().enumerate() {
        if *keep {
            remap[i] = blocks.len();
            blocks.push(cfg.blocks[i].clone());
        }
    }
    for blk in &mut blocks {
        blk.succs = blk
            .succs
            .iter()
            .filter(|s| reach[**s])
            .map(|s| remap[*s])
            .collect();
        blk.succs.sort_unstable();
        blk.succs.dedup();
    }
    Cfg {
        blocks,
        entry: remap[cfg.entry],
        exit: remap[cfg.exit],
    }
}

struct Builder<'a> {
    toks: &'a [Tok],
    blocks: Vec<Block>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self, line: usize) -> usize {
        self.blocks.push(Block {
            line,
            ..Block::default()
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push_stmt(&mut self, block: usize, stmt: Stmt) {
        if self.blocks[block].line == 0 {
            self.blocks[block].line = stmt.line;
        }
        self.blocks[block].stmts.push(stmt);
    }

    fn line_at(&self, i: usize) -> usize {
        self.toks.get(i).map_or(1, |t| t.line)
    }

    /// Parses statements from `toks[*i..end]` into `cur`, returning the
    /// block that control falls out of. `loops` is the enclosing
    /// (header, after) stack for `continue`/`break`.
    fn seq(
        &mut self,
        i: &mut usize,
        end: usize,
        mut cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        while *i < end {
            let text = self.toks[*i].text.as_str();
            match text {
                ";" => *i += 1,
                "#" => {
                    // Statement attribute: `#` `!`? `[…]`.
                    *i += 1;
                    if *i < end && self.toks[*i].text == "!" {
                        *i += 1;
                    }
                    if *i < end && self.toks[*i].text == "[" {
                        *i = skip_group(self.toks, *i, end);
                    }
                }
                "if" => cur = self.if_stmt(i, end, cur, loops),
                "match" => cur = self.match_stmt(i, end, cur, loops),
                "for" | "while" | "loop" => cur = self.loop_stmt(i, end, cur, loops),
                "unsafe" if *i + 1 < end && self.toks[*i + 1].text == "{" => {
                    *i += 1; // fall through to the nested block
                }
                "{" => {
                    let inner_end = skip_group(self.toks, *i, end);
                    let mut j = *i + 1;
                    cur = self.seq(&mut j, inner_end.saturating_sub(1), cur, loops);
                    *i = inner_end;
                }
                "return" | "break" | "continue" => {
                    let start = *i;
                    let stop = scan_simple_stmt(self.toks, *i, end);
                    let stmt = stmt_info(&self.toks[start..stop], StmtKind::Jump);
                    let line = stmt.line;
                    self.push_stmt(cur, stmt);
                    let target = match text {
                        "return" => EXIT,
                        "break" => loops.last().map_or(EXIT, |l| l.1),
                        _ => loops.last().map_or(EXIT, |l| l.0),
                    };
                    self.edge(cur, target);
                    // Anything after the jump is dead until a join point.
                    cur = self.new_block(line);
                    *i = stop;
                }
                "else" => {
                    // Stray `else` (builder tolerance): skip keyword and
                    // its block so progress is guaranteed.
                    *i += 1;
                    if *i < end && self.toks[*i].text == "{" {
                        *i = skip_group(self.toks, *i, end);
                    }
                }
                _ => {
                    let start = *i;
                    let stop = scan_simple_stmt(self.toks, *i, end);
                    if stop == start {
                        *i += 1; // guarantee progress on stray closers
                        continue;
                    }
                    let stmt = stmt_info(&self.toks[start..stop], StmtKind::Plain);
                    self.push_stmt(cur, stmt);
                    *i = stop;
                }
            }
        }
        cur
    }

    /// `if cond { … } [else if …]* [else { … }]` → diamond.
    fn if_stmt(
        &mut self,
        i: &mut usize,
        end: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        let line = self.line_at(*i);
        *i += 1; // `if`
        let cond_start = *i;
        let cond_end = scan_to_block(self.toks, *i, end);
        self.push_stmt(
            cur,
            stmt_info(&self.toks[cond_start..cond_end], StmtKind::Cond),
        );
        *i = cond_end;
        let join = self.new_block(0);
        // Then branch.
        if *i < end && self.toks[*i].text == "{" {
            let inner_end = skip_group(self.toks, *i, end);
            let then_entry = self.new_block(self.line_at(*i));
            self.edge(cur, then_entry);
            let mut j = *i + 1;
            let then_exit = self.seq(&mut j, inner_end.saturating_sub(1), then_entry, loops);
            self.edge(then_exit, join);
            *i = inner_end;
        } else {
            self.edge(cur, join); // malformed: degrade to fallthrough
        }
        // Else / else-if chain.
        if *i < end && self.toks[*i].text == "else" {
            *i += 1;
            if *i < end && self.toks[*i].text == "if" {
                let else_entry = self.new_block(self.line_at(*i));
                self.edge(cur, else_entry);
                let else_exit = self.if_stmt(i, end, else_entry, loops);
                self.edge(else_exit, join);
            } else if *i < end && self.toks[*i].text == "{" {
                let inner_end = skip_group(self.toks, *i, end);
                let else_entry = self.new_block(self.line_at(*i));
                self.edge(cur, else_entry);
                let mut j = *i + 1;
                let else_exit = self.seq(&mut j, inner_end.saturating_sub(1), else_entry, loops);
                self.edge(else_exit, join);
                *i = inner_end;
            } else {
                self.edge(cur, join);
            }
        } else {
            self.edge(cur, join); // no else: condition may fall through
        }
        if self.blocks[join].line == 0 {
            self.blocks[join].line = line;
        }
        join
    }

    /// `match scrutinee { pat => body, … }` → fan-out/fan-in.
    fn match_stmt(
        &mut self,
        i: &mut usize,
        end: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        let line = self.line_at(*i);
        *i += 1; // `match`
        let scrut_start = *i;
        let scrut_end = scan_to_block(self.toks, *i, end);
        self.push_stmt(
            cur,
            stmt_info(&self.toks[scrut_start..scrut_end], StmtKind::MatchHead),
        );
        *i = scrut_end;
        let join = self.new_block(line);
        if *i >= end || self.toks[*i].text != "{" {
            self.edge(cur, join);
            return join;
        }
        let body_end = skip_group(self.toks, *i, end); // index past `}`
        let inner_end = body_end.saturating_sub(1);
        let mut j = *i + 1;
        let mut any_arm = false;
        while j < inner_end {
            // Pattern (incl. any `if` guard): tokens up to `=>` at depth 0.
            let pat_start = j;
            let mut depth = 0usize;
            while j < inner_end {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= inner_end {
                break; // no arrow: done (trailing tokens tolerated)
            }
            if j > pat_start {
                self.push_stmt(cur, stmt_info(&self.toks[pat_start..j], StmtKind::Pattern));
            }
            j += 1; // `=>`
                    // Arm body: a braced block, or tokens to the depth-0 comma.
            let arm_entry = self.new_block(self.line_at(j));
            self.edge(cur, arm_entry);
            let arm_exit;
            if j < inner_end && self.toks[j].text == "{" {
                let arm_end = skip_group(self.toks, j, inner_end);
                let mut k = j + 1;
                arm_exit = self.seq(&mut k, arm_end.saturating_sub(1), arm_entry, loops);
                j = arm_end;
            } else {
                let body_start = j;
                let mut depth = 0usize;
                while j < inner_end {
                    match self.toks[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let mut k = body_start;
                arm_exit = self.seq(&mut k, j, arm_entry, loops);
            }
            self.edge(arm_exit, join);
            any_arm = true;
            if j < inner_end && self.toks[j].text == "," {
                j += 1;
            }
        }
        if !any_arm {
            self.edge(cur, join); // `match x {}` — diverges, but stay total
        }
        *i = body_end;
        join
    }

    /// `for`/`while`/`loop` → header, body with back edge, after-block.
    /// Bare `loop` still gets a header→after edge: the analyses are
    /// over-approximate and an infinite loop without `break` would
    /// otherwise disconnect the exit.
    fn loop_stmt(
        &mut self,
        i: &mut usize,
        end: usize,
        cur: usize,
        loops: &mut Vec<(usize, usize)>,
    ) -> usize {
        let line = self.line_at(*i);
        let kw = self.toks[*i].text.clone();
        let header = self.new_block(line);
        self.edge(cur, header);
        *i += 1; // keyword
        if kw != "loop" {
            let h_start = *i;
            let h_end = scan_to_block(self.toks, *i, end);
            self.push_stmt(
                header,
                stmt_info(&self.toks[h_start..h_end], StmtKind::LoopHeader),
            );
            *i = h_end;
        }
        let after = self.new_block(line);
        if *i < end && self.toks[*i].text == "{" {
            let body_end = skip_group(self.toks, *i, end);
            let body_entry = self.new_block(self.line_at(*i));
            self.edge(header, body_entry);
            loops.push((header, after));
            let mut j = *i + 1;
            let body_exit = self.seq(&mut j, body_end.saturating_sub(1), body_entry, loops);
            loops.pop();
            self.edge(body_exit, header);
            *i = body_end;
        }
        self.edge(header, after);
        after
    }
}

/// Index just past the balanced group opening at `open` (`toks[open]`
/// must be `(`/`[`/`{`). Clamped to `end` on imbalance.
fn skip_group(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Scans a simple statement starting at `i`: consumes balanced groups
/// and stops past a depth-0 `;`, or before a stray closer / `end`.
fn scan_simple_stmt(toks: &[Tok], mut i: usize, end: usize) -> usize {
    while i < end {
        match toks[i].text.as_str() {
            ";" => return i + 1,
            "(" | "[" | "{" => {
                i = skip_group(toks, i, end);
            }
            ")" | "]" | "}" => return i,
            _ => i += 1,
        }
    }
    end
}

/// Scans a condition/header/scrutinee: stops before the depth-0 `{`
/// that opens the construct's body. Parenthesised/bracketed groups are
/// consumed whole so struct-literal braces inside them don't confuse
/// the scan (Rust bans bare struct literals in these positions).
fn scan_to_block(toks: &[Tok], mut i: usize, end: usize) -> usize {
    while i < end {
        match toks[i].text.as_str() {
            "{" => return i,
            "(" | "[" => {
                i = skip_group(toks, i, end);
            }
            ")" | "]" | "}" | ";" => return i,
            _ => i += 1,
        }
    }
    end
}

/// Identifier-read predicate shared by `uses` and argument summaries:
/// a local/param read, not a callee name, path segment, field/method
/// name, or macro name.
fn is_use_at(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != TokKind::Ident || is_stmt_keyword(&t.text) {
        return false;
    }
    // Uppercase-initial identifiers are types/variants, not locals.
    if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
        return false;
    }
    if let Some(n) = toks.get(i + 1) {
        if matches!(n.text.as_str(), "(" | "!" | "::") {
            return false;
        }
    }
    if i > 0 {
        let p = &toks[i - 1];
        if matches!(p.text.as_str(), "." | "::") {
            return false;
        }
    }
    true
}

fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "as"
            | "dyn"
            | "impl"
            | "fn"
            | "where"
            | "unsafe"
            | "await"
            | "true"
            | "false"
    )
}

/// Summarises a token slice into a [`Stmt`]. Pure token-level analysis;
/// no recursion into control flow (the builder already split that out).
pub fn stmt_info(toks: &[Tok], kind: StmtKind) -> Stmt {
    let line = toks.first().map_or(0, |t| t.line);
    let mut stmt = Stmt {
        line,
        kind,
        defs: Vec::new(),
        weak_def: false,
        uses: Vec::new(),
        calls: Vec::new(),
        macros: Vec::new(),
        indexes: Vec::new(),
        sources: Vec::new(),
        has_comparison: false,
        text: toks
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" "),
    };

    // Definitions: `let` bindings and depth-0 assignments.
    let mut use_from = 0usize; // uses are read from here on
    let mut assign_eq = None; // position of a plain `=`, if any
    if toks.first().is_some_and(|t| t.text == "let") {
        let mut k = 1;
        while toks
            .get(k)
            .is_some_and(|t| matches!(t.text.as_str(), "mut" | "ref"))
        {
            k += 1;
        }
        // First identifier after `let [mut]` is always a binding
        // (`let x`, `let x: T`, `let Some(x)` handled below).
        let eq = find_depth0(toks, "=");
        let pat_end = eq.unwrap_or(toks.len());
        let mut depth = 0usize;
        let mut angle = 0usize;
        for j in k..pat_end {
            let t = &toks[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "<" => angle += 1,
                ">" => angle = angle.saturating_sub(1),
                _ => {}
            }
            if t.kind != TokKind::Ident || is_stmt_keyword(&t.text) || angle > 0 {
                continue;
            }
            if t.text.chars().next().is_some_and(|c| c.is_uppercase()) {
                continue; // enum/struct pattern constructors
            }
            // Inside the pattern: binding unless it's a struct field
            // name (`Foo { a: x }` — `a` is followed by `:` at depth 1
            // with an identifier after it) or a type-position name.
            let after_colon = j >= 1 && toks[j - 1].text == ":";
            let first = stmt.defs.is_empty() && depth == 0;
            let followed_by_colon = toks.get(j + 1).is_some_and(|n| n.text == ":");
            if first || after_colon || !followed_by_colon {
                if j + 1 < pat_end && toks.get(j + 1).is_some_and(|n| n.text == "::") {
                    continue; // path segment in a pattern
                }
                stmt.defs.push(t.text.clone());
            }
        }
        // Type ascription names leak through the heuristic above only
        // when lowercase (e.g. `let x: usize`) — `usize` et al. are
        // filtered here.
        stmt.defs.retain(|d| !is_primitive(d));
        stmt.defs.dedup();
        use_from = eq.map_or(toks.len(), |e| e + 1);
    } else if let Some(eq) = find_depth0_assign(toks) {
        // `target = rhs` / `target += rhs`.
        let lhs = &toks[..eq];
        let base = lhs.iter().find(|t| {
            t.kind == TokKind::Ident
                && !is_stmt_keyword(&t.text)
                && !t.text.chars().next().is_some_and(|c| c.is_uppercase())
        });
        if let Some(b) = base {
            stmt.defs.push(b.text.clone());
            // Field or index writes taint the base without killing it.
            stmt.weak_def =
                lhs.iter().any(|t| matches!(t.text.as_str(), "." | "[")) || toks[eq].text != "=";
        }
        use_from = 0; // LHS index expressions are still reads
        if toks[eq].text == "=" {
            // A plain store's target is written, not read; only nested
            // index/call subexpressions on the LHS count as uses.
            assign_eq = Some(eq);
        }
    }

    let mut depth0 = Vec::new(); // depth per token, for arg splitting
    let mut depth = 0usize;
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                depth0.push(depth);
                depth += 1;
            }
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                depth0.push(depth);
            }
            _ => depth0.push(depth),
        }
    }

    for (j, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "<" | ">" | "<=" | ">=" | "==" | "!=" => stmt.has_comparison = true,
            "[" if j > 0 && tok_ends_expr_at(toks, j - 1) => {
                let close = skip_group(toks, j, toks.len());
                let inner = &toks[j + 1..close.saturating_sub(1)];
                let base = depth0[j];
                let ops = inner
                    .iter()
                    .enumerate()
                    .zip(&depth0[j + 1..close.saturating_sub(1)])
                    .filter(|((k, t), d)| {
                        // Binary only: `*`/`-`/`&` are also prefix
                        // operators (deref, negation), which don't make
                        // an arithmetic index expression.
                        **d == base + 1
                            && matches!(t.text.as_str(), "*" | "+" | "-" | "/" | "%")
                            && *k > 0
                            && tok_ends_expr_at(inner, k - 1)
                    })
                    .map(|((_, t), _)| t.text.clone())
                    .collect();
                stmt.indexes.push(IndexSite {
                    line: t.line,
                    expr: inner
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect::<Vec<_>>()
                        .join(" "),
                    ops,
                });
            }
            _ => {}
        }
        let lhs_target = assign_eq.is_some_and(|eq| j < eq && depth0[j] == depth0[eq]);
        if j >= use_from && !lhs_target && is_use_at(toks, j) {
            stmt.uses.push(t.text.clone());
        }
        // Macro invocation: `name !`.
        if t.kind == TokKind::Ident && toks.get(j + 1).is_some_and(|n| n.text == "!") {
            stmt.macros.push(t.text.clone());
        }
        // Call site: `name (` — method if preceded by `.`.
        if t.kind == TokKind::Ident
            && !is_stmt_keyword(&t.text)
            && toks.get(j + 1).is_some_and(|n| n.text == "(")
        {
            let is_method = j > 0 && toks[j - 1].text == ".";
            let mut path = vec![t.text.clone()];
            let mut recv = Vec::new();
            if is_method {
                // Receiver chain: ident (`.` ident)* before the dot.
                let mut k = j - 1;
                while k >= 1 {
                    let p = &toks[k - 1];
                    if p.kind == TokKind::Ident && !is_stmt_keyword(&p.text) {
                        recv.push(p.text.clone());
                        if k >= 2 && toks[k - 2].text == "." {
                            k -= 2;
                            continue;
                        }
                    }
                    break;
                }
                recv.reverse();
            } else {
                // Path prefix: (ident `::`)* name.
                let mut k = j;
                while k >= 2 && toks[k - 1].text == "::" && toks[k - 2].kind == TokKind::Ident {
                    path.insert(0, toks[k - 2].text.clone());
                    k -= 2;
                }
            }
            let close = skip_group(toks, j + 1, toks.len());
            let inner = &toks[j + 2..close.saturating_sub(1)];
            let inner_depths = &depth0[j + 2..close.saturating_sub(1)];
            let base = depth0[j + 1] + 1;
            let mut args = Vec::new();
            let mut arg = ArgInfo::default();
            let mut any = false;
            for (k, (it, d)) in inner.iter().zip(inner_depths).enumerate() {
                if it.text == "," && *d == base {
                    args.push(std::mem::take(&mut arg));
                    continue;
                }
                any = true;
                if !arg.text.is_empty() {
                    arg.text.push(' ');
                }
                arg.text.push_str(&it.text);
                if is_use_at(inner, k) {
                    arg.idents.push(it.text.clone());
                }
            }
            if any || !args.is_empty() {
                args.push(arg);
            }
            stmt.calls.push(CallSite {
                line: t.line,
                path,
                is_method,
                recv,
                args,
            });
        }
        // Source reads: `.field` (no call parens) and receiver methods
        // are recorded generically; the taint rule filters by name.
        if t.kind == TokKind::Ident
            && j > 0
            && toks[j - 1].text == "."
            && toks.get(j + 1).is_none_or(|n| n.text != "(")
        {
            let mut recv = Vec::new();
            let mut k = j - 1;
            while k >= 1 {
                let p = &toks[k - 1];
                if p.kind == TokKind::Ident && !is_stmt_keyword(&p.text) {
                    recv.push(p.text.clone());
                    if k >= 2 && toks[k - 2].text == "." {
                        k -= 2;
                        continue;
                    }
                }
                break;
            }
            recv.reverse();
            stmt.sources.push(SourceRead {
                line: t.line,
                what: t.text.clone(),
                recv,
            });
        }
    }
    // Method calls double as potential source reads (`r.kv_rows()`,
    // `prompt.len()`).
    for c in &stmt.calls {
        if c.is_method {
            stmt.sources.push(SourceRead {
                line: c.line,
                what: c.name().to_string(),
                recv: c.recv.clone(),
            });
        }
    }
    stmt
}

fn is_primitive(s: &str) -> bool {
    matches!(
        s,
        "usize"
            | "isize"
            | "u8"
            | "u16"
            | "u32"
            | "u64"
            | "u128"
            | "i8"
            | "i16"
            | "i32"
            | "i64"
            | "i128"
            | "f32"
            | "f64"
            | "bool"
            | "char"
            | "str"
    )
}

/// Whether token `i` can end an indexable expression (mirrors the
/// parser's array-literal/index disambiguation).
fn tok_ends_expr_at(toks: &[Tok], i: usize) -> bool {
    match toks.get(i) {
        Some(t) => match t.kind {
            TokKind::Ident => !is_stmt_keyword(&t.text),
            TokKind::Number | TokKind::Str => true,
            TokKind::Tick => false,
            TokKind::Punct => matches!(t.text.as_str(), ")" | "]" | "?"),
        },
        None => false,
    }
}

/// Index of the first depth-0 occurrence of `what`.
fn find_depth0(toks: &[Tok], what: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            s if s == what && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Index of a depth-0 assignment operator (`=`, `+=`, …), skipping
/// closure bodies is unnecessary: depth-0 in a *statement* slice means
/// the assignment really is the statement's top level.
fn find_depth0_assign(toks: &[Tok]) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Dominators.
// ---------------------------------------------------------------------

/// Immediate dominators via the iterative RPO intersection algorithm
/// (Cooper/Harvey/Kennedy). `idom[entry] == entry`; unreachable blocks
/// cannot occur (the builder prunes them).
pub fn dominators(cfg: &Cfg) -> Vec<usize> {
    let n = cfg.blocks.len();
    let rpo = cfg.rpo();
    let mut order = vec![usize::MAX; n]; // block -> rpo position
    for (pos, &b) in rpo.iter().enumerate() {
        order[b] = pos;
    }
    let preds = cfg.preds();
    let mut idom = vec![usize::MAX; n];
    idom[cfg.entry] = cfg.entry;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom = usize::MAX;
            for &p in &preds[b] {
                if idom[p] == usize::MAX {
                    continue; // not yet processed
                }
                new_idom = if new_idom == usize::MAX {
                    p
                } else {
                    intersect(&idom, &order, p, new_idom)
                };
            }
            if new_idom != usize::MAX && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(idom: &[usize], order: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order[a] > order[b] {
            a = idom[a];
        }
        while order[b] > order[a] {
            b = idom[b];
        }
    }
    a
}

/// Whether block `a` dominates block `b` under `idom`.
pub fn dominates(idom: &[usize], a: usize, mut b: usize) -> bool {
    loop {
        if a == b {
            return true;
        }
        let up = idom[b];
        if up == b || up == usize::MAX {
            return false;
        }
        b = up;
    }
}

/// Naive O(n²) dominator sets by fixpoint over
/// `dom(b) = {b} ∪ ⋂_{p∈preds(b)} dom(p)` — the reference the battery
/// checks the iterative computation against.
pub fn dominators_naive(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.blocks.len();
    let preds = cfg.preds();
    let mut dom = vec![vec![true; n]; n];
    dom[cfg.entry] = vec![false; n];
    dom[cfg.entry][cfg.entry] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            if b == cfg.entry {
                continue;
            }
            let mut new = vec![!preds[b].is_empty(); n];
            for &p in &preds[b] {
                for (k, nk) in new.iter_mut().enumerate() {
                    *nk = *nk && dom[p][k];
                }
            }
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan_source;

    fn cfg_of(body_src: &str) -> Cfg {
        let src = format!("fn f(n: usize, v: Vec<usize>) {{\n{body_src}\n}}\n");
        let p = parse_file(&scan_source("crates/x/src/a.rs", &src, true));
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        build(&p.fns[0].body, p.fns[0].line)
    }

    #[test]
    fn straight_line_body_is_two_blocks() {
        let c = cfg_of("let a = n + 1;\nlet b = a * 2;\nhelper(b);");
        assert_eq!(c.entry, 0);
        assert_eq!(c.blocks[c.entry].stmts.len(), 3);
        assert_eq!(c.blocks[c.entry].succs, vec![c.exit]);
    }

    #[test]
    fn if_else_forms_a_diamond_and_dominators_agree() {
        let c = cfg_of("if n > 3 { helper(n); } else { other(n); }\ntail(n);");
        // entry (cond), then, else, join — plus exit.
        assert_eq!(c.blocks.len(), 5);
        let idom = dominators(&c);
        let naive = dominators_naive(&c);
        for (b, row) in naive.iter().enumerate() {
            for (a, &expected) in row.iter().enumerate() {
                assert_eq!(
                    dominates(&idom, a, b),
                    expected,
                    "dominates({a},{b}) mismatch"
                );
            }
        }
        // The condition block dominates the join; neither branch does.
        let join = c.blocks[c.exit]
            .stmts
            .first()
            .map(|_| c.exit)
            .unwrap_or(c.exit);
        assert!(dominates(&idom, c.entry, join));
    }

    #[test]
    fn loops_have_back_edges_and_after_blocks() {
        let c = cfg_of("while n > 0 { step(n); }\ntail(n);");
        // Some block has an edge back to the header (the block holding
        // the `while` condition).
        let header = (0..c.blocks.len())
            .find(|b| {
                c.blocks[*b]
                    .stmts
                    .iter()
                    .any(|s| s.kind == StmtKind::LoopHeader)
            })
            .expect("loop header block");
        assert!(
            c.blocks
                .iter()
                .enumerate()
                .any(|(b, blk)| b != header && blk.succs.contains(&header)),
            "{c:#?}"
        );
    }

    #[test]
    fn break_and_continue_target_the_loop_frames() {
        let c = cfg_of("loop {\n    if n == 0 { break; }\n    n = step(n);\n}\ntail(n);");
        let idom = dominators(&c);
        let naive = dominators_naive(&c);
        for (b, row) in naive.iter().enumerate() {
            for (a, &expected) in row.iter().enumerate() {
                assert_eq!(dominates(&idom, a, b), expected);
            }
        }
        // `tail` runs in a block reachable only through the loop.
        assert!(c
            .blocks
            .iter()
            .any(|blk| blk.stmts.iter().any(|s| s.text.contains("tail"))));
    }

    #[test]
    fn match_arms_fan_out_and_rejoin() {
        let c = cfg_of(
            "match v.len() {\n    0 => helper(n),\n    1 => { other(n); }\n    _ => return,\n}\ntail(n);",
        );
        // Arm bodies live in separate blocks; `return` edges to exit.
        assert!(c.blocks[c.exit].succs.is_empty());
        let arm_blocks = c
            .blocks
            .iter()
            .filter(|b| b.stmts.iter().any(|s| s.kind == StmtKind::Jump))
            .count();
        assert_eq!(arm_blocks, 1, "{c:#?}");
        assert!(c
            .blocks
            .iter()
            .any(|b| b.stmts.iter().any(|s| s.text.contains("tail"))));
    }

    #[test]
    fn early_return_keeps_the_exit_reachable_and_tail_dead_code_pruned() {
        let c = cfg_of("if n > 9 { return; }\ntail(n);");
        let idom = dominators(&c);
        // Every block reachable (prune guarantees it) and entry
        // dominates everything.
        for b in 0..c.blocks.len() {
            assert!(dominates(&idom, c.entry, b), "entry must dominate {b}");
        }
    }

    #[test]
    fn stmt_info_records_defs_uses_calls_and_sources() {
        let src = "fn f(r: Req) {\n    let rows = r.max_new_tokens + 1;\n    let capped = rows.min(64);\n    engine.max_new_tokens = rows;\n    let v = data[i * stride + j];\n}\n";
        let p = parse_file(&scan_source("crates/x/src/a.rs", src, true));
        let c = build(&p.fns[0].body, p.fns[0].line);
        let stmts: Vec<&Stmt> = c.blocks.iter().flat_map(|b| &b.stmts).collect();
        assert_eq!(stmts.len(), 4, "{stmts:#?}");
        assert_eq!(stmts[0].defs, vec!["rows"]);
        assert!(stmts[0]
            .sources
            .iter()
            .any(|s| s.what == "max_new_tokens" && s.recv == vec!["r"]));
        assert_eq!(stmts[1].defs, vec!["capped"]);
        assert!(stmts[1].calls.iter().any(|c| c.name() == "min"));
        assert_eq!(stmts[2].defs, vec!["engine"]);
        assert!(stmts[2].weak_def);
        assert!(stmts[2].uses.contains(&"rows".to_string()));
        let idx = &stmts[3].indexes[0];
        assert!(idx.ops.contains(&"*".to_string()));
        assert!(idx.ops.contains(&"+".to_string()));
    }

    #[test]
    fn tuple_let_defines_every_binding() {
        let src = "fn f() {\n    let (tx, rx) = bounded(1);\n    rx.recv();\n}\n";
        let p = parse_file(&scan_source("crates/x/src/a.rs", src, true));
        let c = build(&p.fns[0].body, p.fns[0].line);
        let s = &c.blocks[c.entry].stmts[0];
        assert_eq!(s.defs, vec!["tx", "rx"]);
        assert!(s.calls.iter().any(|c| c.name() == "bounded"));
    }

    #[test]
    fn call_arguments_split_at_depth0_commas() {
        let src = "fn f(a: usize, b: usize) {\n    g(a + 1, h(b, 2), b);\n}\n";
        let p = parse_file(&scan_source("crates/x/src/a.rs", src, true));
        let c = build(&p.fns[0].body, p.fns[0].line);
        let s = &c.blocks[c.entry].stmts[0];
        let g = s.calls.iter().find(|c| c.name() == "g").expect("g");
        assert_eq!(g.args.len(), 3, "{g:#?}");
        assert_eq!(g.args[0].idents, vec!["a"]);
        assert!(g.args[1].text.contains("h ( b , 2 )"));
        assert_eq!(g.args[2].idents, vec!["b"]);
    }
}
