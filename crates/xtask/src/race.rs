//! `shared_state_race`: escape-aware static race detection.
//!
//! For every value classified **Shared** by [`crate::escape`] (spawn
//! captures, `Arc` aliases, non-`Sync` statics, lock-guarded data), the
//! rule collects cross-thread access pairs and intersects their
//! [`crate::lockset`] locksets. A write paired with a concurrent access
//! under an **empty** lock intersection — with no happens-before edge
//! ordering the two — is a finding carrying both access sites, their
//! spawn origins, and the computed locksets.
//!
//! **Execution contexts.** Closures are absorbed into single parent
//! statements by [`crate::cfg`], so each thread boundary gets its own
//! CFG built from the closure's recorded body tokens:
//! - *owner* — the function body outside every thread closure, entered
//!   with the interprocedural [`crate::lockset::entry_locks`] of the
//!   function;
//! - *scope runner* — the `|scope| …` of `thread::scope` (runs on the
//!   owner thread, joins all its spawns before returning);
//! - *spawn* — each closure handed to a `spawn` entry point, entered
//!   with an empty lockset.
//!
//! **Happens-before edges recognized:**
//! - *scope-join dominance* — owner accesses after `thread::scope`
//!   returns are ordered after every scoped spawn; owner accesses
//!   before the spawn statement are ordered before it.
//! - *free-spawn join* — `let h = thread::spawn(…); … h.join()` bounds
//!   the concurrency window to `(spawn line, join line)`.
//! - *channel transfer* — a binding passed through `send(…)` moved
//!   ownership; the send→recv pairing orders the handoff, so sent
//!   payloads never pair.
//!
//! The analysis is deliberately asymmetric in its errors: lock
//! over-approximation and capture classification may *miss* races
//! (any static tool must), but every reported pair names two concrete
//! statements with disjoint must-locksets — which is why each
//! workspace finding must be fixed or backed by a generated
//! [`witness_harness`] loom test proving the interleaving exists.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{self, Cfg, Stmt};
use crate::escape::{self, FnEscape, Sharing, MUTATING_METHODS, SYNC_METHODS};
use crate::lockset::{self, LockEnv};
use crate::parse::{FnDef, ParsedFile};
use crate::rules::{Finding, Severity};
use crate::WorkspaceFacts;

/// Crate sources the rule audits (shim files are handed in separately —
/// they model the external sync primitives the serving stack leans on).
pub const RACE_SCOPE: &[&str] = &[
    "crates/serving/src/",
    "crates/spec/src/",
    "crates/model/src/",
];

fn in_scope(path: &str) -> bool {
    RACE_SCOPE.iter().any(|p| path.starts_with(p)) || path.starts_with("shims/")
}

/// Where an access executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtxKind {
    Owner,
    Runner,
    Spawn,
}

/// One execution context of a function.
struct Ctx {
    kind: CtxKind,
    /// Spawn/scope statement line (0 for the owner context).
    start: usize,
    /// Spawn issued inside a loop: the context races itself.
    in_loop: bool,
    /// Line after which the owner has joined this spawn (scope end for
    /// scoped spawns, `h.join()` line for free spawns).
    joined_at: Option<usize>,
}

impl Ctx {
    fn label(&self) -> String {
        match self.kind {
            CtxKind::Owner => "owner thread".to_string(),
            CtxKind::Runner => format!("scope body (line {})", self.start),
            CtxKind::Spawn => format!("thread spawned at line {}", self.start),
        }
    }
}

/// One read or write of a shared location.
#[derive(Debug, Clone)]
struct Access {
    ctx: usize,
    line: usize,
    location: String,
    write: bool,
    locks: BTreeSet<String>,
}

/// A static access escaping its function, for the cross-function pass.
struct StaticAccess {
    path: String,
    fn_label: String,
    spawn_ctx: bool,
    line: usize,
    name: String,
    write: bool,
    locks: BTreeSet<String>,
}

/// Runs the race rule over the workspace facts plus the shim files
/// (shims stay outside the call graph but inside the audit).
pub fn race_findings(
    facts: &WorkspaceFacts,
    shims: &[ParsedFile],
    strict: bool,
    out: &mut Vec<Finding>,
) {
    let entry = lockset::entry_locks(facts);
    let mut node_idx: BTreeMap<(&str, usize), usize> = BTreeMap::new();
    for (i, n) in facts.graph.fns.iter().enumerate() {
        node_idx.insert((n.path.as_str(), n.line), i);
    }

    let files: Vec<&ParsedFile> = facts
        .files
        .iter()
        .chain(shims.iter())
        .filter(|f| strict || in_scope(&f.path))
        .collect();

    // Non-`Sync` statics across the audited set (name → defining file).
    let mut statics: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for file in &files {
        for s in escape::racy_statics(&file.statics) {
            statics.insert(s.name.clone(), (file.path.clone(), s.line));
        }
    }
    let static_names: BTreeSet<String> = statics.keys().cloned().collect();

    let mut static_accesses: Vec<StaticAccess> = Vec::new();
    for file in &files {
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            analyze_fn(
                file,
                f,
                facts,
                &entry,
                &node_idx,
                &static_names,
                &mut static_accesses,
                out,
            );
        }
    }

    // Cross-function static pairing: a write to a non-`Sync` static
    // plus any other access with at least one side on a spawned thread.
    for (i, a) in static_accesses.iter().enumerate() {
        for b in static_accesses.iter().skip(i + 1) {
            if a.name != b.name || !(a.write || b.write) {
                continue;
            }
            if !(a.spawn_ctx || b.spawn_ctx) {
                continue;
            }
            let same_site = a.path == b.path && a.line == b.line;
            if same_site && !(a.spawn_ctx && b.spawn_ctx) {
                continue;
            }
            if a.locks.intersection(&b.locks).next().is_some() {
                continue;
            }
            let (w, o) = if a.write { (a, b) } else { (b, a) };
            out.push(Finding {
                rule: "shared_state_race",
                severity: Severity::Error,
                path: w.path.clone(),
                line: w.line,
                message: format!(
                    "non-Sync static `{}` written in {} at line {} (locks: {}) while {} in \
                     {} at line {} (locks: {}) can run concurrently; guard it with a lock or \
                     make it atomic",
                    w.name,
                    w.fn_label,
                    w.line,
                    fmt_locks(&w.locks),
                    if o.write { "written" } else { "read" },
                    o.fn_label,
                    o.line,
                    fmt_locks(&o.locks),
                ),
                snippet: String::new(),
                call_path: vec![w.fn_label.clone(), o.fn_label.clone()],
            });
        }
    }
}

fn fmt_locks(locks: &BTreeSet<String>) -> String {
    if locks.is_empty() {
        "{}".to_string()
    } else {
        format!(
            "{{{}}}",
            locks.iter().cloned().collect::<Vec<_>>().join(", ")
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn analyze_fn(
    file: &ParsedFile,
    f: &FnDef,
    facts: &WorkspaceFacts,
    entry_locks: &[Option<BTreeSet<String>>],
    node_idx: &BTreeMap<(&str, usize), usize>,
    static_names: &BTreeSet<String>,
    static_accesses: &mut Vec<StaticAccess>,
    out: &mut Vec<Finding>,
) {
    let cls = escape::closures(f);
    let spawn_idx: Vec<usize> = (0..cls.len())
        .filter(|&i| escape::is_spawn(&cls[i]))
        .collect();
    let runner_idx: Vec<usize> = (0..cls.len())
        .filter(|&i| escape::is_scope_runner(&cls[i]))
        .collect();
    if spawn_idx.is_empty() && static_names.is_empty() {
        return;
    }

    let owner = f.owner.as_deref();
    let main_cfg: Cfg = match node_idx.get(&(file.path.as_str(), f.line)) {
        Some(&i) => facts.cfgs[i].clone(),
        None => cfg::build(&f.body, f.line),
    };
    let closure_cfgs: Vec<Cfg> = cls.iter().map(|c| cfg::build(c.body, c.line)).collect();

    let mut esc = FnEscape::default();
    esc.absorb(&main_cfg);
    for ccfg in &closure_cfgs {
        esc.absorb(ccfg);
    }

    // Thread-closure line spans: statements overlapping one belong to
    // that context, not to the enclosing body's.
    let thread_spans: Vec<(usize, usize)> = spawn_idx
        .iter()
        .chain(runner_idx.iter())
        .map(|&i| (cls[i].line, cls[i].end_line))
        .collect();
    let outside_threads = |line: usize| !thread_spans.iter().any(|&(a, b)| a <= line && line <= b);

    // ---- contexts ----------------------------------------------------
    let owner_entry: LockEnv = match node_idx
        .get(&(file.path.as_str(), f.line))
        .and_then(|&i| entry_locks[i].clone())
    {
        Some(locks) => locks
            .into_iter()
            .enumerate()
            .map(|(k, l)| (format!("<entry:{k}>"), l))
            .collect(),
        None => LockEnv::new(),
    };
    let main_solved = lockset::solve(&main_cfg, &owner_entry, owner);
    let main_lines = lockset::LineLocks::new(&main_cfg, &main_solved);

    let mut ctxs: Vec<Ctx> = vec![Ctx {
        kind: CtxKind::Owner,
        start: 0,
        in_loop: false,
        joined_at: None,
    }];
    // closure index → ctx index
    let mut ctx_of: BTreeMap<usize, usize> = BTreeMap::new();
    for &r in &runner_idx {
        ctx_of.insert(r, ctxs.len());
        ctxs.push(Ctx {
            kind: CtxKind::Runner,
            start: cls[r].line,
            in_loop: false,
            joined_at: None,
        });
    }
    for &s in &spawn_idx {
        let c = &cls[s];
        // Scoped spawn: joined when its innermost enclosing scope
        // runner returns. Free spawn: joined at `h.join()` if the
        // handle binding is visible.
        let scope = runner_idx
            .iter()
            .filter(|&&r| cls[r].contains_line(c.line) && r != s)
            .max_by_key(|&&r| cls[r].line)
            .copied();
        let joined_at = match scope {
            Some(r) => Some(cls[r].end_line),
            None => free_spawn_join_line(&main_cfg, c.line),
        };
        ctx_of.insert(s, ctxs.len());
        ctxs.push(Ctx {
            kind: CtxKind::Spawn,
            start: c.line,
            in_loop: c.in_loop,
            joined_at,
        });
    }

    // ---- capture classification -------------------------------------
    let mut tracked: BTreeSet<String> = BTreeSet::new();
    for &s in &spawn_idx {
        let c = &cls[s];
        let sctx = &ctxs[ctx_of[&s]];
        for cap in c.captures {
            let n_spawns = spawn_idx
                .iter()
                .filter(|&&j| cls[j].captures.contains(cap))
                .count();
            let owner_touches_after = mentions(&main_cfg, &outside_threads, cap)
                .iter()
                .any(|&l| sctx.start < l && l < sctx.joined_at.unwrap_or(usize::MAX));
            if escape::classify_capture(cap, c, &esc, n_spawns, owner_touches_after)
                == Sharing::Shared
                && !esc.sent.contains(cap)
            {
                tracked.insert(cap.clone());
            }
        }
    }

    // ---- access extraction ------------------------------------------
    let mut accesses: Vec<Access> = Vec::new();
    // owner context
    collect_accesses(
        0,
        &main_cfg,
        &main_solved,
        &outside_threads,
        &tracked,
        static_names,
        &esc,
        &mut accesses,
    );
    for (&ci, &ctx_i) in &ctx_of {
        let c = &cls[ci];
        let ccfg = &closure_cfgs[ci];
        // Runners enter with the owner's locks at the scope statement;
        // spawned threads enter with nothing.
        let entry_env: LockEnv = if ctxs[ctx_i].kind == CtxKind::Runner {
            main_lines
                .at(c.line)
                .into_iter()
                .enumerate()
                .map(|(k, l)| (format!("<entry:{k}>"), l))
                .collect()
        } else {
            LockEnv::new()
        };
        let solved = lockset::solve(ccfg, &entry_env, owner);
        // Exclude statements of thread closures nested inside this one.
        let nested: Vec<(usize, usize)> = thread_spans
            .iter()
            .filter(|&&(a, b)| c.line <= a && b <= c.end_line && (a, b) != (c.line, c.end_line))
            .copied()
            .collect();
        let keep = |line: usize| !nested.iter().any(|&(a, b)| a <= line && line <= b);
        collect_accesses(
            ctx_i,
            ccfg,
            &solved,
            &keep,
            &tracked,
            static_names,
            &esc,
            &mut accesses,
        );
    }

    // ---- pairing -----------------------------------------------------
    let fn_label = match owner {
        Some(o) => format!("{}::{}", o, f.name),
        None => f.name.clone(),
    };
    // Statics pair globally across functions: stash and take them out
    // of the local pairing.
    let (static_accs, accesses): (Vec<Access>, Vec<Access>) = accesses
        .into_iter()
        .partition(|a| a.location.starts_with("static:"));
    for a in static_accs {
        let name = a.location.strip_prefix("static:").unwrap_or(&a.location);
        static_accesses.push(StaticAccess {
            path: file.path.clone(),
            fn_label: format!("{} ({})", fn_label, ctxs[a.ctx].label()),
            spawn_ctx: ctxs[a.ctx].kind == CtxKind::Spawn,
            line: a.line,
            name: name.to_string(),
            write: a.write,
            locks: a.locks.clone(),
        });
    }
    let mut reported: BTreeSet<(String, usize, usize)> = BTreeSet::new();
    for (i, a) in accesses.iter().enumerate() {
        // A looped spawn races its own next iteration: pair the access
        // with itself.
        let tail = accesses.iter().skip(i + 1);
        let self_pair = std::iter::once(a)
            .filter(|_| ctxs[a.ctx].kind == CtxKind::Spawn && ctxs[a.ctx].in_loop);
        for b in self_pair.chain(tail) {
            if a.location != b.location || !(a.write || b.write) {
                continue;
            }
            if !concurrent(&ctxs, a, b) {
                continue;
            }
            if a.locks.intersection(&b.locks).next().is_some() {
                continue;
            }
            let key = (a.location.clone(), a.ctx.min(b.ctx), a.ctx.max(b.ctx));
            if !reported.insert(key) {
                continue;
            }
            let (w, o) = if a.write { (a, b) } else { (b, a) };
            out.push(Finding {
                rule: "shared_state_race",
                severity: Severity::Error,
                path: file.path.clone(),
                line: w.line,
                message: format!(
                    "`{}` in `{}` is written at line {} on {} (locks: {}) while {} at line \
                     {} on {} (locks: {}); the locksets share no lock and no happens-before \
                     edge orders the accesses — protect both sides with one lock, hand the \
                     value off through a channel, or partition it (`chunks_mut`/`split_at_mut`)",
                    w.location,
                    fn_label,
                    w.line,
                    ctxs[w.ctx].label(),
                    fmt_locks(&w.locks),
                    if o.write { "written" } else { "read" },
                    o.line,
                    ctxs[o.ctx].label(),
                    fmt_locks(&o.locks),
                ),
                snippet: file.raw_line(w.line),
                call_path: vec![
                    format!("{} @ {}:{}", ctxs[w.ctx].label(), file.path, w.line),
                    format!("{} @ {}:{}", ctxs[o.ctx].label(), file.path, o.line),
                ],
            });
        }
    }
}

/// Whether two accesses can execute at the same time on different
/// threads (or on overlapping instances of one looped spawn).
fn concurrent(ctxs: &[Ctx], a: &Access, b: &Access) -> bool {
    let (ca, cb) = (&ctxs[a.ctx], &ctxs[b.ctx]);
    if a.ctx == b.ctx {
        return ca.kind == CtxKind::Spawn && ca.in_loop;
    }
    let window = |s: &Ctx, line: usize| {
        // Owner-side line vs a spawn's live window (spawn → join).
        s.start < line && line < s.joined_at.unwrap_or(usize::MAX)
    };
    match (ca.kind, cb.kind) {
        (CtxKind::Spawn, CtxKind::Spawn) => {
            // Overlap of the two live windows: a spawn joined before
            // the other starts is ordered by the join edge.
            !(ca.joined_at.unwrap_or(usize::MAX) <= cb.start
                || cb.joined_at.unwrap_or(usize::MAX) <= ca.start)
        }
        (CtxKind::Spawn, _) => window(ca, b.line),
        (_, CtxKind::Spawn) => window(cb, a.line),
        // Owner and scope runners all execute on the owner thread.
        _ => false,
    }
}

/// The line of `h.join()` for the free spawn at `spawn_line`, if its
/// handle is bound and joined in this body.
fn free_spawn_join_line(main_cfg: &Cfg, spawn_line: usize) -> Option<usize> {
    let mut handle: Option<&String> = None;
    for block in &main_cfg.blocks {
        for stmt in &block.stmts {
            if stmt
                .calls
                .iter()
                .any(|c| c.name() == "spawn" && c.line == spawn_line)
            {
                handle = stmt.defs.first();
            }
        }
    }
    let handle = handle?;
    for block in &main_cfg.blocks {
        for stmt in &block.stmts {
            for c in &stmt.calls {
                if c.is_method && c.name() == "join" && c.recv.first() == Some(handle) {
                    return Some(c.line);
                }
            }
        }
    }
    None
}

/// Lines where `name` is mentioned in kept statements of a CFG.
fn mentions(cfg: &Cfg, keep: &dyn Fn(usize) -> bool, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for block in &cfg.blocks {
        for stmt in &block.stmts {
            if !keep(stmt.line) {
                continue;
            }
            let hit = stmt.uses.iter().any(|u| u == name)
                || stmt.defs.iter().any(|d| d == name)
                || stmt.calls.iter().any(|c| {
                    c.recv.first().map(String::as_str) == Some(name)
                        || c.args.iter().any(|a| a.idents.iter().any(|i| i == name))
                });
            if hit {
                out.push(stmt.line);
            }
        }
    }
    out
}

/// Extracts shared-location accesses from the kept statements of one
/// context's CFG.
#[allow(clippy::too_many_arguments)]
fn collect_accesses(
    ctx: usize,
    cfg: &Cfg,
    solved: &[Vec<LockEnv>],
    keep: &dyn Fn(usize) -> bool,
    tracked: &BTreeSet<String>,
    static_names: &BTreeSet<String>,
    esc: &FnEscape,
    out: &mut Vec<Access>,
) {
    for (b, block) in cfg.blocks.iter().enumerate() {
        for (s, stmt) in block.stmts.iter().enumerate() {
            if !keep(stmt.line) {
                continue;
            }
            let env = &solved[b][s];
            let locks = lockset::held(env);

            // Guard-mediated data: accesses through a live guard map to
            // the lock's data location, under the current lockset.
            for (g, lock) in env {
                if g.starts_with("<entry:") {
                    continue;
                }
                if let Some(write) = mention_kind(stmt, g, esc) {
                    out.push(Access {
                        ctx,
                        line: stmt.line,
                        location: format!("lock:{lock}"),
                        write,
                        locks: locks.clone(),
                    });
                }
            }

            for t in tracked {
                if let Some(write) = mention_kind(stmt, t, esc) {
                    out.push(Access {
                        ctx,
                        line: stmt.line,
                        location: t.clone(),
                        write,
                        locks: locks.clone(),
                    });
                }
            }

            // Statics are uppercase and invisible to `uses`; scan the
            // joined token text.
            for name in static_names {
                if let Some(write) = static_mention_kind(&stmt.text, name) {
                    out.push(Access {
                        ctx,
                        line: stmt.line,
                        location: format!("static:{name}"),
                        write,
                        locks: locks.clone(),
                    });
                }
            }
        }
    }
}

const ASSIGN_OPS: &[&str] = &["=", "+=", "-=", "*=", "/=", "%="];

/// How a statement touches binding `t`: `Some(true)` = write,
/// `Some(false)` = read, `None` = no raw access (untouched, or mediated
/// by a sync primitive / handed off as a sync-call payload).
fn mention_kind(stmt: &Stmt, t: &str, esc: &FnEscape) -> Option<bool> {
    let t_eq = |s: &String| s == t;

    let weak_write = stmt.weak_def && stmt.defs.first().map(String::as_str) == Some(t);
    let shadowing = stmt.text.starts_with("let ");
    let strong_write = !stmt.weak_def && !shadowing && stmt.defs.iter().any(t_eq);
    let deref_write = {
        let toks: Vec<&str> = stmt.text.split(' ').collect();
        toks.windows(3)
            .any(|w| w[0] == "*" && w[1] == t && ASSIGN_OPS.contains(&w[2]))
    };
    let mut_method = stmt.calls.iter().any(|c| {
        c.is_method
            && c.recv.first().map(String::as_str) == Some(t)
            && MUTATING_METHODS.contains(&c.name())
    });
    if weak_write || strong_write || deref_write || mut_method {
        return Some(true);
    }

    let sync_recv = stmt.calls.iter().any(|c| {
        c.is_method
            && c.recv.first().map(String::as_str) == Some(t)
            && SYNC_METHODS.contains(&c.name())
    });
    let sync_payload = stmt.calls.iter().any(|c| {
        SYNC_METHODS.contains(&c.name()) && c.args.iter().any(|a| a.idents.iter().any(t_eq))
    });
    let arc_clone = stmt
        .calls
        .iter()
        .any(|c| c.name() == "clone" && esc.is_arc(t));
    if sync_recv || sync_payload || arc_clone {
        return None;
    }

    let read = stmt.uses.iter().any(t_eq)
        || stmt.calls.iter().any(|c| {
            c.recv.first().map(String::as_str) == Some(t)
                || c.args.iter().any(|a| a.idents.iter().any(t_eq))
        });
    read.then_some(false)
}

/// Classifies a mention of static `name` in a statement's joined token
/// text: write (assigned, compound-assigned, or mutated through a
/// method), read, or none. Sync-mediated chains (`.load(`, `.lock(`)
/// return `None` — but non-`Sync` statics rarely have those.
fn static_mention_kind(text: &str, name: &str) -> Option<bool> {
    let toks: Vec<&str> = text.split(' ').collect();
    let mut saw_read = false;
    for i in 0..toks.len() {
        if toks[i] != name {
            continue;
        }
        if i > 0 && toks[i - 1] == "." {
            continue; // field named like the static
        }
        // Walk the field chain: `NAME . field . sub`.
        let mut j = i + 1;
        let mut last_seg = name;
        while j + 1 < toks.len() && toks[j] == "." {
            last_seg = toks[j + 1];
            j += 2;
        }
        match toks.get(j).copied() {
            Some(op) if ASSIGN_OPS.contains(&op) => return Some(true),
            Some("(") => {
                // `NAME.method(…)` — the chain walker consumed the
                // method name as `last_seg`.
                if MUTATING_METHODS.contains(&last_seg) {
                    return Some(true);
                }
                if !SYNC_METHODS.contains(&last_seg) {
                    saw_read = true;
                }
            }
            _ => saw_read = true,
        }
    }
    saw_read.then_some(false)
}

// ---------------------------------------------------------------------
// Loom witness generation
// ---------------------------------------------------------------------

/// One witness: a test name, the shared location it models, and whether
/// one side of the race holds a lock (the dropped-guard shape).
pub struct Witness<'a> {
    pub test_name: &'a str,
    pub location: &'a str,
    pub one_side_locked: bool,
}

/// Renders a complete `shims/loom/tests/` file of witness harnesses.
///
/// Each harness models the *reported interleaving* — two threads
/// performing an unsynchronized read-modify-write on the shared
/// location (one side optionally under a lock the other side does not
/// take) — and asserts that the explorer **finds** a lost update:
/// `explore(...).failure.is_some()`. A passing test is therefore an
/// executable proof that the racy interleaving exists, which is what a
/// sanctioned `shared_state_race` allowlist entry must cite by name.
pub fn witness_file(witnesses: &[Witness<'_>]) -> String {
    let mut out = String::new();
    out.push_str(
        "//! Generated loom witnesses for `shared_state_race` findings.\n\
         //!\n\
         //! DO NOT EDIT BY HAND: produced by `specinfer_xtask::race::witness_file`\n\
         //! and pinned byte-for-byte by `race::tests::checked_in_witnesses_match_generator`.\n\
         //! Each test models a reported racy interleaving and asserts the loom\n\
         //! explorer exhibits the lost update — a passing test is an executable\n\
         //! proof the race is real, cited by the corresponding lint-allow entry\n\
         //! or fixture.\n\n\
         use loom::sync::atomic::{AtomicUsize, Ordering};\n\
         use loom::sync::{Arc, Mutex};\n\n",
    );
    for w in witnesses {
        out.push_str(&witness_harness(w));
        out.push('\n');
    }
    // rustfmt-stable: exactly one trailing newline, so `cargo fmt`
    // leaves the generated file byte-identical to this output.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

/// Renders one witness test (see [`witness_file`]).
pub fn witness_harness(w: &Witness<'_>) -> String {
    let lock_setup = if w.one_side_locked {
        "        let lock = Arc::new(Mutex::new(()));\n\
         \x20       let lock2 = Arc::clone(&lock);\n"
    } else {
        ""
    };
    let lock_hold = if w.one_side_locked {
        "            let _g = lock2.lock().unwrap();\n"
    } else {
        ""
    };
    let lock_note = if w.one_side_locked {
        " (one side locked, the other not — the lock protects nothing)"
    } else {
        ""
    };
    format!(
        "/// Witness for a race on `{loc}`{note}: two threads race a\n\
         /// load→store increment; some schedule must lose an update.\n\
         #[test]\n\
         fn {name}() {{\n\
         \x20   let report = loom::Builder::new().explore(|| {{\n\
         \x20       let cell = Arc::new(AtomicUsize::new(0));\n\
         \x20       let cell2 = Arc::clone(&cell);\n\
         {lock_setup}\
         \x20       let t = loom::thread::spawn(move || {{\n\
         {lock_hold}\
         \x20           let v = cell2.load(Ordering::SeqCst);\n\
         \x20           cell2.store(v + 1, Ordering::SeqCst);\n\
         \x20       }});\n\
         \x20       let v = cell.load(Ordering::SeqCst);\n\
         \x20       cell.store(v + 1, Ordering::SeqCst);\n\
         \x20       t.join().unwrap();\n\
         \x20       assert_eq!(cell.load(Ordering::SeqCst), 2, \"lost update on {loc}\");\n\
         \x20   }});\n\
         \x20   assert!(\n\
         \x20       report.failure.is_some(),\n\
         \x20       \"explorer must exhibit the lost-update interleaving on {loc}\"\n\
         \x20   );\n\
         \x20   assert!(report.schedules >= 2, \"more than one schedule explored\");\n\
         }}\n",
        loc = w.location,
        note = lock_note,
        name = w.test_name,
    )
}

/// The witnesses checked into `shims/loom/tests/race_witness.rs`: one
/// per known-bad race fixture shape.
pub fn checked_in_witnesses() -> String {
    witness_file(&[
        Witness {
            test_name: "race_unlocked_write_witness",
            location: "stats.total",
            one_side_locked: false,
        },
        Witness {
            test_name: "race_guard_dropped_early_witness",
            location: "shared.hits",
            one_side_locked: true,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use crate::scan::scan_source;

    fn findings_of(src: &str) -> Vec<Finding> {
        let p = parse_file(&scan_source("crates/serving/src/a.rs", src, true));
        assert!(p.errors.is_empty(), "{:?}", p.errors);
        let facts = crate::WorkspaceFacts::build(vec![p]);
        let mut out = Vec::new();
        race_findings(&facts, &[], true, &mut out);
        out.retain(|f| f.rule == "shared_state_race");
        out
    }

    #[test]
    fn unlocked_cross_thread_write_is_a_race() {
        let out = findings_of(
            "fn f(pool: &Pool, stats: &mut Stats) {\n    pool.spawn(|| {\n        stats.total += 1;\n    });\n    pool.spawn(|| {\n        read_it(stats.total);\n    });\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("stats"), "{}", out[0].message);
        assert!(!out[0].call_path.is_empty());
    }

    #[test]
    fn common_lock_on_both_sides_is_clean() {
        let out = findings_of(
            "fn f(pool: &Pool, m: &Mutex<u32>, stats: &mut Stats) {\n    pool.spawn(|| {\n        let g = m.lock().unwrap();\n        stats.total += 1;\n        drop(g);\n    });\n    pool.spawn(|| {\n        let g = m.lock().unwrap();\n        read_it(stats.total);\n        drop(g);\n    });\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn guard_dropped_before_the_write_races() {
        let out = findings_of(
            "fn f(pool: &Pool, m: &Mutex<u32>, shared: &mut Stats) {\n    pool.spawn(|| {\n        let g = m.lock().unwrap();\n        drop(g);\n        shared.hits += 1;\n    });\n    pool.spawn(|| {\n        let g = m.lock().unwrap();\n        shared.hits += 1;\n        drop(g);\n    });\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("shared"), "{}", out[0].message);
    }

    #[test]
    fn channel_handoff_is_a_happens_before_edge() {
        let out = findings_of(
            "fn f(tx: Sender<Job>, rx: Receiver<Job>) {\n    let mut job = Job::new();\n    job.steps += 1;\n    thread::spawn(move || {\n        let got = rx.recv().unwrap();\n        run(got);\n    });\n    tx.send(job).unwrap();\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn scope_join_orders_owner_accesses_after_spawns() {
        let out = findings_of(
            "fn f(acc: &mut Vec<u32>) {\n    std::thread::scope(|scope| {\n        for chunk in acc.chunks_mut(4) {\n            scope.spawn(move || fill(chunk));\n        }\n    });\n    consume(acc);\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn free_spawn_join_bounds_the_window() {
        let out = findings_of(
            "fn f(stats: &mut Stats) {\n    let h = thread::spawn(|| {\n        stats.total += 1;\n    });\n    h.join().unwrap();\n    read_it(stats.total);\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn owner_read_while_free_spawn_runs_races() {
        let out = findings_of(
            "fn f(stats: &mut Stats) {\n    let h = thread::spawn(|| {\n        stats.total += 1;\n    });\n    read_it(stats.total);\n    h.join().unwrap();\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn looped_spawn_races_itself() {
        let out = findings_of(
            "fn f(pool: &Pool, stats: &mut Stats) {\n    for _i in 0..4 {\n        pool.spawn(|| {\n            stats.total += 1;\n        });\n    }\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn exclusive_partitions_do_not_race() {
        let out = findings_of(
            "fn f(out_rows: &mut [f32]) {\n    std::thread::scope(|scope| {\n        for (ci, chunk) in out_rows.chunks_mut(8).enumerate() {\n            scope.spawn(move || fill(chunk, ci));\n        }\n    });\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn atomic_counters_are_sync_mediated() {
        let out = findings_of(
            "fn f(pool: &Pool, hits: &AtomicUsize) {\n    pool.spawn(|| {\n        hits.fetch_add(1, Ordering::SeqCst);\n    });\n    pool.spawn(|| {\n        read_it(hits.load(Ordering::SeqCst));\n    });\n}\n",
        );
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn non_sync_static_written_from_a_spawn_races() {
        let out = findings_of(
            "static TABLE: Vec<u32> = Vec::new();\nfn writer(pool: &Pool) {\n    pool.spawn(|| {\n        TABLE.push(1);\n    });\n}\nfn reader() {\n    read_it(TABLE.len());\n}\n",
        );
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("TABLE"), "{}", out[0].message);
    }

    #[test]
    fn checked_in_witnesses_match_generator() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../shims/loom/tests/race_witness.rs"
        );
        let on_disk = std::fs::read_to_string(path).expect("witness file checked in");
        assert_eq!(
            on_disk,
            checked_in_witnesses(),
            "regenerate shims/loom/tests/race_witness.rs via race::checked_in_witnesses()"
        );
    }
}
