//! CLI for specinfer-lint.
//!
//! ```text
//! cargo run -p specinfer-xtask -- lint                 # lint the workspace
//! cargo run -p specinfer-xtask -- lint --root DIR      # lint another tree
//! cargo run -p specinfer-xtask -- lint --strict F...   # all rules, given files
//! cargo run -p specinfer-xtask -- lint --json          # machine-readable report
//! cargo run -p specinfer-xtask -- lint --github        # CI workflow annotations
//! cargo run -p specinfer-xtask -- lint --rule NAME     # only this rule's findings
//! ```
//!
//! `--json` emits one object with a `findings` array (rule, severity,
//! path, line, message, call_path) — the CI lint job uploads it as a
//! report artifact. `--github` prints GitHub Actions `::error` /
//! `::warning` annotation lines so findings land on the PR diff. Both
//! compose with `--root`, `--strict`, and `--rule` (repeatable; keeps
//! only the named rules' findings).
//!
//! Exit code 0 means no error-severity findings (warnings alone don't
//! fail the build); 1 means at least one error finding; 2 means usage
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use specinfer_xtask::rules::{Finding, Severity};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("gen-witnesses") => {
            // Regenerates shims/loom/tests/race_witness.rs:
            //   cargo run -p specinfer-xtask -- gen-witnesses \
            //     > shims/loom/tests/race_witness.rs
            // `race::tests::checked_in_witnesses_match_generator` pins
            // the checked-in file byte-for-byte to this output.
            print!("{}", specinfer_xtask::race::checked_in_witnesses());
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: specinfer-xtask lint [--json|--github] [--rule NAME]... [--root DIR]\n       specinfer-xtask lint [--json|--github] [--rule NAME]... --strict FILE...\n       specinfer-xtask gen-witnesses  # emit the loom witness test file"
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut rule_filter: Vec<String> = Vec::new();
    let mut rest: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--rule" => match it.next() {
                Some(name) => rule_filter.push(name.clone()),
                None => {
                    eprintln!("--rule requires a rule name");
                    return ExitCode::from(2);
                }
            },
            _ => rest.push(a.clone()),
        }
    }
    let args = rest;

    let mut findings = if args.first().map(String::as_str) == Some("--strict") {
        let files: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
        if files.is_empty() {
            eprintln!("lint --strict requires at least one file");
            return ExitCode::from(2);
        }
        specinfer_xtask::lint_files_strict(&files)
    } else {
        let root = match &args[..] {
            [] => default_root(),
            [flag, dir] if flag == "--root" => PathBuf::from(dir),
            _ => {
                eprintln!("unrecognised arguments: {args:?}");
                return ExitCode::from(2);
            }
        };
        specinfer_xtask::lint_workspace(&root)
    };
    if !rule_filter.is_empty() {
        findings.retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }

    match format {
        Format::Text => {
            if findings.is_empty() {
                println!("specinfer-lint: clean");
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("specinfer-lint: {} finding(s)", findings.len());
            }
        }
        Format::Json => println!("{}", render_json(&findings)),
        Format::Github => {
            // One annotation per finding; Actions attaches it to the
            // file/line in the PR diff view. Warnings annotate without
            // failing the job (the exit code below agrees).
            for f in &findings {
                let kind = match f.severity {
                    Severity::Error => "error",
                    Severity::Warn => "warning",
                };
                println!(
                    "::{} file={},line={},title=specinfer-lint {}::{}",
                    kind,
                    f.path,
                    f.line.max(1),
                    f.rule,
                    f.message.replace('\n', " ")
                );
            }
        }
    }
    if findings.iter().any(|f| f.severity == Severity::Error) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders findings as a JSON report. Hand-rolled on purpose: the lint
/// runs on the bare toolchain, so no serde inside the shim boundary.
fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!(
            "\"severity\": {}, ",
            json_str(f.severity.as_str())
        ));
        out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        let path: Vec<String> = f.call_path.iter().map(|s| json_str(s)).collect();
        out.push_str(&format!("\"call_path\": [{}]", path.join(", ")));
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}", findings.len()));
    out
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root: two levels up from this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
