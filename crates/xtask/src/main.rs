//! CLI for specinfer-lint.
//!
//! ```text
//! cargo run -p specinfer-xtask -- lint                 # lint the workspace
//! cargo run -p specinfer-xtask -- lint --root DIR      # lint another tree
//! cargo run -p specinfer-xtask -- lint --strict F...   # all rules, given files
//! ```
//!
//! Exit code 0 means no findings; 1 means findings; 2 means usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        _ => {
            eprintln!(
                "usage: specinfer-xtask lint [--root DIR]\n       specinfer-xtask lint --strict FILE..."
            );
            ExitCode::from(2)
        }
    }
}

fn run_lint(args: &[String]) -> ExitCode {
    let findings = if args.first().map(String::as_str) == Some("--strict") {
        let files: Vec<PathBuf> = args[1..].iter().map(PathBuf::from).collect();
        if files.is_empty() {
            eprintln!("lint --strict requires at least one file");
            return ExitCode::from(2);
        }
        specinfer_xtask::lint_files_strict(&files)
    } else {
        let root = match args {
            [] => default_root(),
            [flag, dir] if flag == "--root" => PathBuf::from(dir),
            _ => {
                eprintln!("unrecognised arguments: {args:?}");
                return ExitCode::from(2);
            }
        };
        specinfer_xtask::lint_workspace(&root)
    };

    if findings.is_empty() {
        println!("specinfer-lint: clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!("specinfer-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels up from this crate's manifest dir.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}
