//! Property-based tests for token-tree invariants.

use proptest::prelude::*;
use specinfer_tokentree::{LinearizedTree, NodeId, TokenTree};

/// Builds a random tree from a shape description: each entry attaches a
/// node under parent `p % current_len` with token `t`.
fn build_tree(root: u32, edges: &[(usize, u32)]) -> TokenTree {
    let mut tree = TokenTree::new(root);
    let mut ids = vec![TokenTree::ROOT];
    for &(p, tok) in edges {
        let parent = ids[p % ids.len()];
        let id = tree.add_child(parent, tok, 0, 0.5);
        ids.push(id);
    }
    tree
}

fn edges_strategy() -> impl Strategy<Value = Vec<(usize, u32)>> {
    prop::collection::vec((0usize..64, 0u32..16), 0..40)
}

proptest! {
    /// Merging trees yields exactly the union of their candidate-sequence
    /// sets (Definition 3.2, both directions).
    #[test]
    fn merge_is_sequence_set_union(
        e1 in edges_strategy(),
        e2 in edges_strategy(),
        e3 in edges_strategy(),
    ) {
        let trees = vec![build_tree(0, &e1), build_tree(0, &e2), build_tree(0, &e3)];
        let merged = TokenTree::merge(&trees);

        let mut union: Vec<Vec<u32>> = Vec::new();
        for t in &trees {
            for s in t.all_sequences() {
                if !union.contains(&s) {
                    union.push(s);
                }
            }
        }
        let merged_seqs = merged.all_sequences();
        // Forward: every input sequence appears in the merge.
        for s in &union {
            prop_assert!(merged_seqs.contains(s), "missing {s:?}");
        }
        // Backward: the merge introduces no new sequences, and each node
        // identifies a distinct sequence (trie property).
        prop_assert_eq!(merged_seqs.len(), union.len());
        for s in &merged_seqs {
            prop_assert!(union.contains(s), "extra {s:?}");
        }
    }

    /// Merge is idempotent: merging a tree with itself preserves the
    /// sequence set and node count of its trie form.
    #[test]
    fn merge_is_idempotent(e in edges_strategy()) {
        let t = build_tree(3, &e);
        let once = TokenTree::merge(std::slice::from_ref(&t));
        let twice = TokenTree::merge(&[t.clone(), t.clone()]);
        prop_assert_eq!(once.len(), twice.len());
        prop_assert_eq!(once.all_sequences(), twice.all_sequences());
    }

    /// DFS order always places parents before children, and visits every
    /// node exactly once.
    #[test]
    fn dfs_is_topological_and_complete(e in edges_strategy()) {
        let t = build_tree(1, &e);
        let order = t.dfs_order();
        prop_assert_eq!(order.len(), t.len());
        let mut pos = vec![usize::MAX; t.len()];
        for (i, u) in order.iter().enumerate() {
            prop_assert_eq!(pos[u.index()], usize::MAX, "node visited twice");
            pos[u.index()] = i;
        }
        for u in t.node_ids() {
            if let Some(p) = t.parent(u) {
                prop_assert!(pos[p.index()] < pos[u.index()]);
            }
        }
    }

    /// The topology mask equals the ancestor relation, for arbitrary trees.
    #[test]
    fn mask_equals_ancestor_relation(e in edges_strategy()) {
        let t = build_tree(2, &e);
        let lin = LinearizedTree::new(&t);
        let nodes: Vec<NodeId> = lin.nodes().to_vec();
        for (i, &u) in nodes.iter().enumerate() {
            for (j, &v) in nodes.iter().enumerate() {
                prop_assert_eq!(lin.mask().allowed(i, j), t.is_ancestor(v, u));
            }
        }
    }

    /// A node's sequence is its parent's sequence plus its own token
    /// (Definition 3.1).
    #[test]
    fn sequence_extends_parent(e in edges_strategy()) {
        let t = build_tree(5, &e);
        for u in t.node_ids() {
            if let Some(p) = t.parent(u) {
                let mut expect = t.sequence(p);
                expect.push(t.token(u));
                prop_assert_eq!(t.sequence(u), expect);
            }
        }
    }

    /// Depths reported by the linearization agree with the tree, and the
    /// mask allows exactly depth+1 positions per row (the root path).
    #[test]
    fn mask_row_cardinality_is_depth_plus_one(e in edges_strategy()) {
        let t = build_tree(0, &e);
        let lin = LinearizedTree::new(&t);
        for i in 0..lin.len() {
            let row_count = (0..lin.len()).filter(|&j| lin.mask().allowed(i, j)).count();
            prop_assert_eq!(row_count, lin.depths()[i] + 1);
        }
    }
}
