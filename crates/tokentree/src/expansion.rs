//! Static expansion schedules for expansion-based tree construction (§3).

use serde::{Deserialize, Serialize};

/// The preset expansion configuration ⟨k₁, k₂, …, k_m⟩ of the paper:
/// `m` is the number of speculative decoding steps and `kᵢ` is how many
/// top-k tokens each frontier node expands to at step `i`.
///
/// The paper's evaluation uses ⟨1,1,3,1,1,1,1,1⟩ ([`ExpansionConfig::paper_default`]);
/// the tree-width sweeps use ⟨1,1,k,1,1,1,1,1⟩ ([`ExpansionConfig::width_at_third`]).
///
/// # Example
///
/// ```
/// use specinfer_tokentree::ExpansionConfig;
///
/// let cfg = ExpansionConfig::new(vec![2, 2, 1]);
/// assert_eq!(cfg.depth(), 3);
/// assert_eq!(cfg.leaf_count(), 4); // Figure 3: four candidate sequences
/// assert_eq!(cfg.node_count(), 2 + 4 + 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExpansionConfig {
    widths: Vec<usize>,
}

impl ExpansionConfig {
    /// Creates a schedule from per-step widths.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or any width is zero.
    pub fn new(widths: Vec<usize>) -> Self {
        assert!(
            !widths.is_empty(),
            "expansion config must have at least one step"
        );
        assert!(
            widths.iter().all(|&k| k > 0),
            "expansion widths must be positive"
        );
        ExpansionConfig { widths }
    }

    /// The configuration used throughout the paper's end-to-end
    /// evaluation: ⟨1,1,3,1,1,1,1,1⟩.
    pub fn paper_default() -> Self {
        ExpansionConfig::new(vec![1, 1, 3, 1, 1, 1, 1, 1])
    }

    /// The tree-width sweep configuration ⟨1,1,k,1,1,1,1,1⟩ used by
    /// Table 2 / Figures 9–10 ("expanding at the third token").
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn width_at_third(k: usize) -> Self {
        let mut widths = vec![1usize; 8];
        widths[2] = k;
        ExpansionConfig::new(widths)
    }

    /// A pure sequence of `m` steps (⟨1,1,…,1⟩) — sequence-based
    /// speculation, the paper's ablation baseline.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn sequence(m: usize) -> Self {
        ExpansionConfig::new(vec![1; m])
    }

    /// Number of speculative decoding steps `m` (the tree depth below the
    /// root).
    pub fn depth(&self) -> usize {
        self.widths.len()
    }

    /// Width `kᵢ` at step `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.depth()`.
    pub fn width(&self, step: usize) -> usize {
        match self.widths.get(step) {
            Some(&k) => k,
            None => unreachable!(
                "expansion step {step} beyond schedule depth {}",
                self.depth()
            ),
        }
    }

    /// Per-step widths as a slice.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// The maximum width across steps — the paper's "tree width".
    pub fn tree_width(&self) -> usize {
        self.widths.iter().copied().max().unwrap_or(1)
    }

    /// Number of leaves (candidate full-length sequences): ∏ kᵢ.
    pub fn leaf_count(&self) -> usize {
        self.widths.iter().product()
    }

    /// Total number of speculated nodes produced by the schedule
    /// (Σ over steps of the cumulative product up to that step).
    pub fn node_count(&self) -> usize {
        let mut frontier = 1usize;
        let mut total = 0usize;
        for &k in &self.widths {
            frontier *= k;
            total += frontier;
        }
        total
    }
}

impl std::fmt::Display for ExpansionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, k) in self.widths.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_3_example_counts() {
        // ⟨2,2,1⟩ from Figure 3: 2 + 4 + 4 = 10 speculated nodes? The
        // figure shows 2 then 4 then 4 nodes below the root.
        let cfg = ExpansionConfig::new(vec![2, 2, 1]);
        assert_eq!(cfg.leaf_count(), 4);
        assert_eq!(cfg.node_count(), 10);
        assert_eq!(cfg.tree_width(), 2);
    }

    #[test]
    fn paper_default_shape() {
        let cfg = ExpansionConfig::paper_default();
        assert_eq!(cfg.depth(), 8);
        assert_eq!(cfg.tree_width(), 3);
        assert_eq!(cfg.leaf_count(), 3);
        // 1 + 1 + 3 + 3*5 more steps of width 1 = 2 + 3*6 = 20
        assert_eq!(cfg.node_count(), 20);
    }

    #[test]
    fn sequence_config_is_linear() {
        let cfg = ExpansionConfig::sequence(5);
        assert_eq!(cfg.leaf_count(), 1);
        assert_eq!(cfg.node_count(), 5);
        assert_eq!(cfg.tree_width(), 1);
    }

    #[test]
    fn width_at_third_matches_paper_sweep() {
        let cfg = ExpansionConfig::width_at_third(4);
        assert_eq!(cfg.widths(), &[1, 1, 4, 1, 1, 1, 1, 1]);
        assert_eq!(cfg.tree_width(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = ExpansionConfig::new(vec![1, 0, 2]);
    }

    #[test]
    fn display_renders_angle_brackets() {
        let cfg = ExpansionConfig::new(vec![1, 2, 3]);
        assert_eq!(cfg.to_string(), "⟨1,2,3⟩");
    }
}
