//! Token tree data structures for tree-based speculative inference.
//!
//! A *token tree* (Definition 3.1 of the SpecInfer paper) organizes
//! speculated continuations of a prompt: every node carries one token, and
//! the path from the root to a node spells out one candidate token
//! sequence. This crate provides:
//!
//! * [`TokenTree`] — the tree itself, with ancestor queries and the
//!   **merge** operation of Definition 3.2 (trie-union of candidate sets);
//! * [`ExpansionConfig`] — the static ⟨k₁, …, k_m⟩ expansion schedule used
//!   by the expansion-based tree constructor;
//! * [`LinearizedTree`] — the depth-first linearization used to lay
//!   speculated tokens out in a shared KV cache, together with the
//!   **topology-aware causal mask** that makes single-pass tree attention
//!   equivalent to per-sequence attention (§4.2 of the paper).
//!
//! # Example
//!
//! ```
//! use specinfer_tokentree::TokenTree;
//!
//! // Root holds the last verified token; children are speculations.
//! let mut tree = TokenTree::new(7);
//! let a = tree.add_child(TokenTree::ROOT, 1, 0, 0.9);
//! let _b = tree.add_child(TokenTree::ROOT, 2, 0, 0.1);
//! let c = tree.add_child(a, 3, 0, 0.8);
//! assert_eq!(tree.sequence(c), vec![7, 1, 3]);
//! assert_eq!(tree.len(), 4);
//! ```

mod expansion;
mod linearize;
mod tree;

pub use expansion::ExpansionConfig;
pub use linearize::{LinearizedTree, TopologyMask};
pub use tree::{NodeId, TokenId, TokenTree};
