//! The token tree of Definition 3.1 and the merge of Definition 3.2.

use serde::{Deserialize, Serialize};

/// A vocabulary token identifier.
pub type TokenId = u32;

/// Handle to a node within a [`TokenTree`].
///
/// Node ids are indices into the owning tree's arena; they are only
/// meaningful for the tree that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The arena index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    token: TokenId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: usize,
    ssm_id: usize,
    ssm_prob: f32,
}

/// A speculated token tree (Definition 3.1).
///
/// The **root** holds the last *verified* token `t₀`; every other node is a
/// speculated token whose candidate sequence `S_u` is the concatenation of
/// the tokens on the path from the root to `u`.
///
/// Each speculated node records which SSM proposed it (`ssm_id`) and that
/// SSM's conditional probability for the token given its parent's sequence
/// (`ssm_prob`) — both are consumed by the stochastic verifier's multi-step
/// speculative sampling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenTree {
    nodes: Vec<Node>,
}

impl TokenTree {
    /// The root node id (always present).
    pub const ROOT: NodeId = NodeId(0);

    /// Creates a tree whose root carries the verified token `root_token`.
    pub fn new(root_token: TokenId) -> Self {
        TokenTree {
            nodes: vec![Node {
                token: root_token,
                parent: None,
                children: Vec::new(),
                depth: 0,
                ssm_id: usize::MAX,
                ssm_prob: 1.0,
            }],
        }
    }

    /// Number of nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of *speculated* nodes (everything but the root).
    pub fn speculated_len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Resolves a node id against the arena. Ids are only mintable by
    /// the owning tree (the inner index is `pub(crate)`), so a miss
    /// means a handle crossed trees — a caller bug worth stopping
    /// loudly rather than an anonymous bounds panic.
    fn node(&self, u: NodeId) -> &Node {
        match self.nodes.get(u.0) {
            Some(n) => n,
            None => unreachable!(
                "NodeId {} used against a tree with {} nodes",
                u.0,
                self.nodes.len()
            ),
        }
    }

    fn node_mut(&mut self, u: NodeId) -> &mut Node {
        let n = self.nodes.len();
        match self.nodes.get_mut(u.0) {
            Some(node) => node,
            None => unreachable!("NodeId {} used against a tree with {n} nodes", u.0),
        }
    }

    /// Adds a speculated child of `parent` and returns its id.
    ///
    /// `ssm_id` identifies the proposing SSM, `ssm_prob` is that SSM's
    /// conditional probability for `token` given the parent's sequence.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        token: TokenId,
        ssm_id: usize,
        ssm_prob: f32,
    ) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "parent node out of range");
        let id = NodeId(self.nodes.len());
        let depth = self.node(parent).depth + 1;
        self.nodes.push(Node {
            token,
            parent: Some(parent),
            children: Vec::new(),
            depth,
            ssm_id,
            ssm_prob,
        });
        self.node_mut(parent).children.push(id);
        id
    }

    /// The token at `u`.
    pub fn token(&self, u: NodeId) -> TokenId {
        self.node(u).token
    }

    /// The parent of `u`, or `None` for the root.
    pub fn parent(&self, u: NodeId) -> Option<NodeId> {
        self.node(u).parent
    }

    /// The children of `u`, in insertion order.
    pub fn children(&self, u: NodeId) -> &[NodeId] {
        &self.node(u).children
    }

    /// Depth of `u` (root has depth 0).
    pub fn depth(&self, u: NodeId) -> usize {
        self.node(u).depth
    }

    /// The id of the SSM that proposed `u` (`usize::MAX` for the root).
    pub fn ssm_id(&self, u: NodeId) -> usize {
        self.node(u).ssm_id
    }

    /// The proposing SSM's conditional probability for `u`'s token.
    pub fn ssm_prob(&self, u: NodeId) -> f32 {
        self.node(u).ssm_prob
    }

    /// The candidate sequence `S_u`: tokens on the root→`u` path, root
    /// first.
    pub fn sequence(&self, u: NodeId) -> Vec<TokenId> {
        let mut rev = Vec::with_capacity(self.node(u).depth + 1);
        let mut cur = Some(u);
        while let Some(c) = cur {
            rev.push(self.node(c).token);
            cur = self.node(c).parent;
        }
        rev.reverse();
        rev
    }

    /// Whether `a` is an ancestor of `b` (a node is its own ancestor).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            // Depth check lets us stop early on long chains.
            if self.node(c).depth < self.node(a).depth {
                return false;
            }
            cur = self.node(c).parent;
        }
        false
    }

    /// Looks up the child of `parent` carrying `token`, if any.
    pub fn child_with_token(&self, parent: NodeId, token: TokenId) -> Option<NodeId> {
        self.node(parent)
            .children
            .iter()
            .copied()
            .find(|&c| self.node(c).token == token)
    }

    /// Iterates over all node ids in arena order (root first).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// All leaf nodes (nodes without children).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&u| self.node(u).children.is_empty())
            .collect()
    }

    /// Maximum node depth in the tree.
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Pre-order depth-first traversal starting at the root.
    ///
    /// This is the order in which speculated tokens are laid out in the
    /// shared KV cache (§4.2, "depth-first search to update key-value
    /// cache"). Parents always precede their children.
    pub fn dfs_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![Self::ROOT];
        while let Some(u) = stack.pop() {
            order.push(u);
            // Push children reversed so the first child is visited first.
            for &c in self.node(u).children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// The set of candidate sequences represented by the tree — one per
    /// node, per Definition 3.1 (the root's singleton sequence included).
    pub fn all_sequences(&self) -> Vec<Vec<TokenId>> {
        self.node_ids().map(|u| self.sequence(u)).collect()
    }

    /// Builds the trie of a set of candidate sequences — the inverse of
    /// [`TokenTree::all_sequences`] for sequence sets that are closed
    /// under prefixes of themselves.
    ///
    /// Every sequence must start with the same root token. Metadata
    /// (`ssm_id`, `ssm_prob`) defaults to SSM 0 with probability 1.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty, any sequence is empty, or root
    /// tokens disagree.
    pub fn from_sequences(sequences: &[Vec<TokenId>]) -> TokenTree {
        assert!(!sequences.is_empty(), "need at least one sequence");
        assert!(
            sequences.iter().all(|s| !s.is_empty()),
            "sequences must be non-empty"
        );
        let root = sequences[0][0];
        let mut tree = TokenTree::new(root);
        for s in sequences {
            assert_eq!(s[0], root, "all sequences must share the root token");
            let mut cur = Self::ROOT;
            for &tok in &s[1..] {
                cur = match tree.child_with_token(cur, tok) {
                    Some(existing) => existing,
                    None => tree.add_child(cur, tok, 0, 1.0),
                };
            }
        }
        tree
    }

    /// Merges token trees per Definition 3.2: the result `ℳ` contains a
    /// node `v` with `S_v = S_u` for every node `u` of every input tree,
    /// and nothing else (a trie union of the candidate-sequence sets).
    ///
    /// When the same sequence is contributed by several SSMs, the metadata
    /// (`ssm_id`, `ssm_prob`) of the *first* contributor is kept; the
    /// stochastic verifier treats each distinct child token once, per
    /// Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if `trees` is empty or the root tokens disagree (all trees
    /// must speculate from the same verified token).
    pub fn merge(trees: &[TokenTree]) -> TokenTree {
        assert!(!trees.is_empty(), "merge requires at least one tree");
        let root_token = trees[0].token(Self::ROOT);
        for t in trees {
            assert_eq!(
                t.token(Self::ROOT),
                root_token,
                "all merged trees must share the same verified root token"
            );
        }
        let mut merged = TokenTree::new(root_token);
        for t in trees {
            // Walk the source tree in DFS order, mapping each source node to
            // its counterpart in the merged trie.
            let order = t.dfs_order();
            let mut map = vec![Self::ROOT; t.len()];
            for u in order {
                if u == Self::ROOT {
                    continue;
                }
                let parent_src = match t.parent(u) {
                    Some(p) => p,
                    // DFS order visits the root first and skips it above.
                    None => unreachable!("non-root node {} must have a parent", u.0),
                };
                let parent_dst = map[parent_src.0];
                let token = t.token(u);
                let dst = match merged.child_with_token(parent_dst, token) {
                    Some(existing) => existing,
                    None => merged.add_child(parent_dst, token, t.ssm_id(u), t.ssm_prob(u)),
                };
                map[u.0] = dst;
            }
        }
        merged
    }
}

impl std::fmt::Display for TokenTree {
    /// Indented one-node-per-line rendering, DFS order:
    ///
    /// ```text
    /// 0
    ///   1 (p=0.90)
    ///     3 (p=0.70)
    ///   2 (p=0.10)
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for u in self.dfs_order() {
            let indent = "  ".repeat(self.depth(u));
            if u == Self::ROOT {
                writeln!(f, "{}", self.token(u))?;
            } else {
                writeln!(f, "{indent}{} (p={:.2})", self.token(u), self.ssm_prob(u))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(tokens: &[TokenId]) -> TokenTree {
        let mut t = TokenTree::new(tokens[0]);
        let mut cur = TokenTree::ROOT;
        for &tok in &tokens[1..] {
            cur = t.add_child(cur, tok, 0, 0.5);
        }
        t
    }

    #[test]
    fn sequences_follow_paths() {
        let mut t = TokenTree::new(10);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.9);
        let b = t.add_child(TokenTree::ROOT, 2, 0, 0.1);
        let c = t.add_child(a, 3, 0, 0.7);
        assert_eq!(t.sequence(TokenTree::ROOT), vec![10]);
        assert_eq!(t.sequence(a), vec![10, 1]);
        assert_eq!(t.sequence(b), vec![10, 2]);
        assert_eq!(t.sequence(c), vec![10, 1, 3]);
    }

    #[test]
    fn depths_and_leaves() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.5);
        let b = t.add_child(a, 2, 0, 0.5);
        let c = t.add_child(TokenTree::ROOT, 3, 0, 0.5);
        assert_eq!(t.depth(TokenTree::ROOT), 0);
        assert_eq!(t.depth(b), 2);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.leaves(), vec![b, c]);
    }

    #[test]
    fn ancestor_relation() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.5);
        let b = t.add_child(a, 2, 0, 0.5);
        let c = t.add_child(TokenTree::ROOT, 3, 0, 0.5);
        assert!(t.is_ancestor(TokenTree::ROOT, b));
        assert!(t.is_ancestor(a, b));
        assert!(t.is_ancestor(b, b));
        assert!(!t.is_ancestor(b, a));
        assert!(!t.is_ancestor(c, b));
    }

    #[test]
    fn dfs_parents_precede_children() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.5);
        let _b = t.add_child(a, 2, 0, 0.5);
        let c = t.add_child(TokenTree::ROOT, 3, 0, 0.5);
        let _d = t.add_child(c, 4, 0, 0.5);
        let order = t.dfs_order();
        assert_eq!(order.len(), t.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; t.len()];
            for (i, u) in order.iter().enumerate() {
                p[u.0] = i;
            }
            p
        };
        for u in t.node_ids() {
            if let Some(p) = t.parent(u) {
                assert!(
                    pos[p.0] < pos[u.0],
                    "parent must precede child in DFS order"
                );
            }
        }
    }

    #[test]
    fn dfs_is_preorder_first_child_first() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.5);
        let b = t.add_child(a, 2, 0, 0.5);
        let c = t.add_child(TokenTree::ROOT, 3, 0, 0.5);
        assert_eq!(t.dfs_order(), vec![TokenTree::ROOT, a, b, c]);
    }

    #[test]
    fn merge_of_chains_matches_figure_3() {
        // The four sequences from Figure 3 of the paper (tokens renamed to
        // small integers): machine=0 learning=1 algorithm=2 system=3
        // design=4 translation=5 models=6 is=7 are=8
        let s1 = chain(&[0, 1, 2, 7]);
        let s2 = chain(&[0, 1, 3, 4]);
        let s3 = chain(&[0, 5, 6, 8]);
        let s4 = chain(&[0, 5, 3, 4]);
        let m = TokenTree::merge(&[s1.clone(), s2.clone(), s3.clone(), s4.clone()]);

        // Every input sequence must be present…
        let merged_seqs = m.all_sequences();
        for t in [&s1, &s2, &s3, &s4] {
            for s in t.all_sequences() {
                assert!(merged_seqs.contains(&s), "missing sequence {s:?}");
            }
        }
        // …and nothing else (vice versa direction of Definition 3.2).
        let mut union: Vec<Vec<TokenId>> = Vec::new();
        for t in [&s1, &s2, &s3, &s4] {
            for s in t.all_sequences() {
                if !union.contains(&s) {
                    union.push(s);
                }
            }
        }
        assert_eq!(merged_seqs.len(), union.len());
        // Distinct prefixes: root; {01,05}; {012,013,056,053}; four leaves.
        assert_eq!(m.len(), 1 + 2 + 4 + 4);
    }

    #[test]
    fn merge_keeps_first_contributor_metadata() {
        let mut t1 = TokenTree::new(0);
        t1.add_child(TokenTree::ROOT, 1, 0, 0.9);
        let mut t2 = TokenTree::new(0);
        t2.add_child(TokenTree::ROOT, 1, 1, 0.4);
        let m = TokenTree::merge(&[t1, t2]);
        assert_eq!(m.len(), 2);
        let child = m.children(TokenTree::ROOT)[0];
        assert_eq!(m.ssm_id(child), 0);
        assert!((m.ssm_prob(child) - 0.9).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "same verified root token")]
    fn merge_rejects_mismatched_roots() {
        let t1 = TokenTree::new(0);
        let t2 = TokenTree::new(1);
        let _ = TokenTree::merge(&[t1, t2]);
    }

    #[test]
    fn from_sequences_round_trips_through_all_sequences() {
        let seqs = vec![vec![0, 1, 2], vec![0, 1, 3], vec![0, 4]];
        let t = TokenTree::from_sequences(&seqs);
        let all = t.all_sequences();
        for s in &seqs {
            assert!(all.contains(s), "missing {s:?}");
        }
        // Trie nodes: [0], [0,1], [0,4], [0,1,2], [0,1,3].
        assert_eq!(t.len(), 5);
        // Rebuilding from the complete sequence set is the identity.
        let t2 = TokenTree::from_sequences(&all);
        assert_eq!(t2.all_sequences(), all);
    }

    #[test]
    fn display_renders_one_line_per_node() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 1, 0, 0.9);
        let _ = t.add_child(a, 3, 0, 0.7);
        let s = t.to_string();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("(p=0.90)"));
        assert!(s.lines().nth(2).unwrap().starts_with("    "));
    }

    #[test]
    fn child_with_token_finds_existing() {
        let mut t = TokenTree::new(0);
        let a = t.add_child(TokenTree::ROOT, 5, 0, 0.5);
        assert_eq!(t.child_with_token(TokenTree::ROOT, 5), Some(a));
        assert_eq!(t.child_with_token(TokenTree::ROOT, 6), None);
    }
}
