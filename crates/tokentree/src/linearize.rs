//! Depth-first linearization and the topology-aware causal mask (§4.2).
//!
//! To verify a whole token tree in one decoding pass, SpecInfer lays the
//! tree's tokens out linearly in the shared KV cache following a
//! depth-first traversal, and replaces the ordinary causal mask with a
//! *topology-aware* mask: token `i` may attend to tree token `j` iff `j`
//! is an ancestor of `i` in the tree (or `i` itself). Attention to the
//! already-verified prefix is always allowed and handled by the model.

use crate::tree::{NodeId, TokenId, TokenTree};

/// The ancestor mask over linearized tree positions.
///
/// `allowed(i, j)` is `true` iff the node at linear index `j` lies on the
/// root-path of the node at linear index `i` (inclusive). Combined with
/// full visibility of the verified prefix, this reproduces exactly the
/// attention pattern each candidate sequence would see under ordinary
/// causal decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyMask {
    n: usize,
    bits: Vec<bool>,
}

impl TopologyMask {
    /// Builds a mask over `n` positions from an arbitrary visibility
    /// predicate. Used by the hierarchical verifier to restrict an
    /// existing tree mask to a sub-range of linear positions (the depth-1
    /// frontier, or one surviving subtree) without re-linearizing.
    pub fn from_fn(n: usize, mut allowed: impl FnMut(usize, usize) -> bool) -> Self {
        let mut bits = vec![false; n * n];
        for (idx, bit) in bits.iter_mut().enumerate() {
            *bit = allowed(idx / n.max(1), idx % n.max(1));
        }
        TopologyMask { n, bits }
    }

    /// Number of linearized positions covered by the mask.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether position `i` may attend to position `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn allowed(&self, i: usize, j: usize) -> bool {
        match self.try_allowed(i, j) {
            Some(b) => b,
            None => unreachable!("mask index ({i},{j}) out of range for {} positions", self.n),
        }
    }

    /// Non-panicking [`TopologyMask::allowed`]: `None` when either index
    /// is out of range, for callers handling untrusted positions.
    pub fn try_allowed(&self, i: usize, j: usize) -> Option<bool> {
        if i >= self.n || j >= self.n {
            return None;
        }
        // In range by the check above: i*n + j < n*n == bits.len().
        self.bits.get(i * self.n + j).copied()
    }

    /// Number of allowed (i, j) pairs — useful for cost accounting.
    pub fn allowed_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }
}

/// A token tree flattened into KV-cache layout order.
///
/// Index 0 is always the tree root (the last verified token, which is fed
/// through the model together with the speculated tokens, as in Figure 4
/// of the paper); speculated nodes follow in pre-order DFS.
#[derive(Debug, Clone)]
pub struct LinearizedTree {
    tokens: Vec<TokenId>,
    nodes: Vec<NodeId>,
    index_of: Vec<usize>,
    depths: Vec<usize>,
    parents: Vec<Option<usize>>,
    mask: TopologyMask,
}

impl LinearizedTree {
    /// Linearizes `tree` in DFS order and builds its topology mask.
    pub fn new(tree: &TokenTree) -> Self {
        let order = tree.dfs_order();
        let n = order.len();
        let mut index_of = vec![usize::MAX; n];
        for (i, u) in order.iter().enumerate() {
            match index_of.get_mut(u.index()) {
                Some(slot) => *slot = i,
                None => unreachable!("DFS node id {} outside arena of {n} nodes", u.index()),
            }
        }
        let tokens: Vec<TokenId> = order.iter().map(|&u| tree.token(u)).collect();
        let depths: Vec<usize> = order.iter().map(|&u| tree.depth(u)).collect();
        let parents: Vec<Option<usize>> = order
            .iter()
            .map(|&u| {
                tree.parent(u).map(|p| match index_of.get(p.index()) {
                    Some(&i) if i != usize::MAX => i,
                    _ => unreachable!("parent of a DFS-visited node must be indexed"),
                })
            })
            .collect();

        // Because parents precede children in DFS order, each row of the
        // ancestor mask is its parent's row plus the diagonal bit.
        let mut bits = vec![false; n * n];
        for (i, par) in parents.iter().enumerate() {
            if let Some(p) = *par {
                // Parent rows precede child rows, so p*n + n <= i*n.
                let (head, tail) = bits.split_at_mut(i * n);
                match (head.get(p * n..p * n + n), tail.get_mut(..n)) {
                    (Some(src), Some(dst)) => dst.copy_from_slice(src),
                    _ => unreachable!("mask rows lie inside the n*n buffer"),
                }
            }
            match bits.get_mut(i * n + i) {
                Some(b) => *b = true,
                None => unreachable!("diagonal bit lies inside the n*n buffer"),
            }
        }

        LinearizedTree {
            tokens,
            nodes: order,
            index_of,
            depths,
            parents,
            mask: TopologyMask { n, bits },
        }
    }

    /// Number of linearized positions (root + speculated nodes).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether only the root is present.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= 1
    }

    /// Tokens in linear (DFS) order; index 0 is the verified root token.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Tree node ids in linear order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The linear index of tree node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` does not belong to the linearized tree.
    pub fn index_of(&self, u: NodeId) -> usize {
        match self.try_index_of(u) {
            Some(i) => i,
            None => unreachable!("node {} not present in linearization", u.index()),
        }
    }

    /// Non-panicking [`LinearizedTree::index_of`]: `None` when `u` does
    /// not belong to the linearized tree (including ids from another,
    /// larger tree, which the panicking accessor would reject by bounds).
    pub fn try_index_of(&self, u: NodeId) -> Option<usize> {
        match self.index_of.get(u.index()) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// Depth (relative to the root) of each linear position. Added to the
    /// verified-prefix length, this gives each token's absolute sequence
    /// position for positional encodings.
    pub fn depths(&self) -> &[usize] {
        &self.depths
    }

    /// Parent linear index of each position (`None` for the root).
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// The topology-aware causal mask over linear positions.
    pub fn mask(&self) -> &TopologyMask {
        &self.mask
    }

    /// One-past-the-end linear index of the subtree rooted at linear
    /// position `s0`. DFS order places a node's whole subtree in the
    /// contiguous range `s0..subtree_end(s0)`, which is what lets the
    /// hierarchical verifier forward one surviving branch as a block.
    pub fn subtree_end(&self, s0: usize) -> usize {
        let base = match self.depths.get(s0) {
            Some(&d) => d,
            None => unreachable!("subtree root {s0} outside linearization of {}", self.len()),
        };
        for (i, &d) in self.depths.iter().enumerate().skip(s0 + 1) {
            if d <= base {
                return i;
            }
        }
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TokenTree;

    fn figure_4_tree() -> TokenTree {
        // Verified t2 with speculated t3..t9 laid out as in Figure 4:
        // t2 → t3 → {t4 → {t5, t6 → t7}, t8 → t9}
        let mut t = TokenTree::new(2);
        let t3 = t.add_child(TokenTree::ROOT, 3, 0, 0.5);
        let t4 = t.add_child(t3, 4, 0, 0.5);
        let _t5 = t.add_child(t4, 5, 0, 0.5);
        let t6 = t.add_child(t4, 6, 0, 0.5);
        let _t7 = t.add_child(t6, 7, 0, 0.5);
        let t8 = t.add_child(t3, 8, 0, 0.5);
        let _t9 = t.add_child(t8, 9, 0, 0.5);
        t
    }

    #[test]
    fn linearization_starts_at_root_and_is_dfs() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        assert_eq!(lin.tokens(), &[2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(lin.depths(), &[0, 1, 2, 3, 3, 4, 2, 3]);
    }

    #[test]
    fn mask_matches_ancestor_relation() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        let mask = lin.mask();
        for (i, &u) in lin.nodes().iter().enumerate() {
            for (j, &v) in lin.nodes().iter().enumerate() {
                assert_eq!(
                    mask.allowed(i, j),
                    tree.is_ancestor(v, u),
                    "mask({i},{j}) must equal ancestor({j}→{i})"
                );
            }
        }
    }

    #[test]
    fn figure_4_mask_excludes_cross_branch() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        let mask = lin.mask();
        // Token 7's sequence is (2,3,4,6,7): it must NOT attend to 5,
        // which precedes it in the cache but is on a sibling branch.
        let i7 = lin.tokens().iter().position(|&t| t == 7).unwrap();
        let i5 = lin.tokens().iter().position(|&t| t == 5).unwrap();
        let i6 = lin.tokens().iter().position(|&t| t == 6).unwrap();
        assert!(i5 < i7, "DFS places 5 before 7");
        assert!(
            !mask.allowed(i7, i5),
            "cross-branch attention must be masked"
        );
        assert!(mask.allowed(i7, i6));
        assert!(
            mask.allowed(i7, 0),
            "everything attends to the verified root"
        );
    }

    #[test]
    fn mask_diagonal_always_allowed() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        for i in 0..lin.len() {
            assert!(lin.mask().allowed(i, i));
        }
    }

    #[test]
    fn allowed_count_for_chain_is_triangular() {
        let mut t = TokenTree::new(0);
        let mut cur = TokenTree::ROOT;
        for tok in 1..5 {
            cur = t.add_child(cur, tok, 0, 0.5);
        }
        let lin = LinearizedTree::new(&t);
        // For a pure chain the mask is lower-triangular: n(n+1)/2 entries.
        assert_eq!(lin.mask().allowed_count(), 5 * 6 / 2);
    }

    #[test]
    fn index_of_round_trips() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        for (i, &u) in lin.nodes().iter().enumerate() {
            assert_eq!(lin.index_of(u), i);
            assert_eq!(lin.try_index_of(u), Some(i));
        }
    }

    #[test]
    fn from_fn_restriction_agrees_with_full_mask() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        let full = lin.mask();
        // Restrict to the depth-1 frontier {root, first depth-1 node}.
        let keep = [0usize, 1usize];
        let sub = TopologyMask::from_fn(keep.len(), |i, j| full.allowed(keep[i], keep[j]));
        for i in 0..keep.len() {
            for j in 0..keep.len() {
                assert_eq!(sub.allowed(i, j), full.allowed(keep[i], keep[j]));
            }
        }
        assert!(TopologyMask::from_fn(0, |_, _| true).is_empty());
    }

    #[test]
    fn subtree_end_covers_contiguous_dfs_ranges() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        // tokens: [2, 3, 4, 5, 6, 7, 8, 9], depths [0,1,2,3,3,4,2,3].
        assert_eq!(lin.subtree_end(0), lin.len(), "root spans everything");
        assert_eq!(
            lin.subtree_end(1),
            lin.len(),
            "t3 spans everything after root"
        );
        assert_eq!(lin.subtree_end(2), 6, "t4's subtree is {{4,5,6,7}}");
        assert_eq!(lin.subtree_end(3), 4, "t5 is a leaf");
        assert_eq!(lin.subtree_end(6), 8, "t8's subtree is {{8,9}}");
        // Every subtree range holds exactly the descendants-or-self.
        for (s0, &u) in lin.nodes().iter().enumerate() {
            let end = lin.subtree_end(s0);
            for (j, &v) in lin.nodes().iter().enumerate() {
                let inside = j >= s0 && j < end;
                assert_eq!(inside, tree.is_ancestor(u, v), "range({s0}) vs ancestry");
            }
        }
    }

    #[test]
    fn try_accessors_reject_out_of_range_without_panicking() {
        let tree = figure_4_tree();
        let lin = LinearizedTree::new(&tree);
        let n = lin.len();
        // A node id from a larger tree is out of bounds for this one.
        let mut big = figure_4_tree();
        let extra = big.add_child(TokenTree::ROOT, 99, 0, 0.5);
        assert_eq!(lin.try_index_of(extra), None);
        assert_eq!(lin.mask().try_allowed(0, n), None);
        assert_eq!(lin.mask().try_allowed(n, 0), None);
        assert_eq!(lin.mask().try_allowed(0, 0), Some(true));
    }
}
