//! End-to-end pipeline test across every crate: grammar → training →
//! distillation → speculative serving with continuous batching → metrics.

use specinfer::model::train::{distill_step, train_step};
use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::serving::{QueuePolicy, Server, ServerConfig, TimingConfig};
use specinfer::spec::{DegradationPolicy, EngineConfig, InferenceMode, StochasticVerifier};
use specinfer::tensor::optim::Adam;
use specinfer::tokentree::ExpansionConfig;
use specinfer::workloads::{trace::Trace, Dataset, Grammar, EOS_TOKEN};

fn tiny_cfg(d: usize) -> ModelConfig {
    ModelConfig {
        vocab_size: 256,
        d_model: d,
        n_layers: 1,
        n_heads: 2,
        d_ff: 2 * d,
        max_seq_len: 256,
    }
}

#[test]
fn full_stack_speculative_serving() {
    // 1. Language + corpus.
    let grammar = Grammar::synthetic(256, 5);
    let corpus = grammar.training_corpus(24, 24, 6);

    // 2. Brief LLM training and SSM distillation (just enough to move
    //    the weights — alignment quality is covered by the repro runs).
    let mut llm = Transformer::from_seed(tiny_cfg(16), 1);
    let mut opt = Adam::new(3e-3);
    for chunk in corpus.chunks(8).take(3) {
        let _ = train_step(&mut llm, &mut opt, chunk);
    }
    let mut ssm = Transformer::from_seed(tiny_cfg(8), 2);
    let mut sopt = Adam::new(3e-3);
    for chunk in corpus.chunks(8).take(2) {
        let _ = distill_step(&mut ssm, &mut sopt, &llm, chunk);
    }

    // 3. Serve a mixed trace with tree speculation + continuous batching.
    let trace = Trace::poisson(&grammar, 6, 50.0, 6, 12, 9);
    let server = Server::new(
        &llm,
        vec![&ssm],
        ServerConfig {
            engine: EngineConfig {
                decode: DecodeMode::Greedy,
                verifier: StochasticVerifier::MultiStep,
                mode: InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::new(vec![2, 2, 1]),
                },
                max_new_tokens: 12,
                eos_token: Some(EOS_TOKEN),
            },
            max_batch_size: 3,
            timing: TimingConfig::llama_7b_single_gpu(),
            seed: 3,
            faults: None,
            degradation: DegradationPolicy::serving_default(),
            queue: QueuePolicy::unbounded(),
            slab_rows: None,
        },
    );
    let report = server.serve_trace(&trace);

    // 4. Every request completed with sane metrics.
    assert_eq!(report.responses.len(), 6);
    for r in &report.responses {
        assert!(!r.generated.is_empty());
        assert!(r.generated.len() <= 12 || r.generated.last() == Some(&EOS_TOKEN));
        assert!(r.finish_s >= r.arrival_s);
        assert!(r.tokens_per_step() >= 1.0);
    }
    assert!(report.mean_per_token_latency_s() > 0.0);
    assert!(report.throughput_tokens_per_s() > 0.0);
    assert!(report.iterations > 0);
}

#[test]
fn serving_is_deterministic() {
    let grammar = Grammar::synthetic(256, 8);
    let llm = Transformer::from_seed(tiny_cfg(16), 4);
    let ssm = Transformer::from_seed(tiny_cfg(8), 5);
    let trace = Trace::closed_batch(&grammar, Dataset::Piqa, 4, 6, 10, 2);
    let run = || {
        let server = Server::new(
            &llm,
            vec![&ssm],
            ServerConfig {
                engine: EngineConfig {
                    decode: DecodeMode::stochastic(),
                    verifier: StochasticVerifier::MultiStep,
                    mode: InferenceMode::TreeSpeculative {
                        expansion: ExpansionConfig::new(vec![2, 1, 1]),
                    },
                    max_new_tokens: 10,
                    eos_token: Some(EOS_TOKEN),
                },
                max_batch_size: 4,
                timing: TimingConfig::llama_7b_single_gpu(),
                seed: 77,
                faults: None,
                degradation: DegradationPolicy::serving_default(),
                queue: QueuePolicy::unbounded(),
                slab_rows: None,
            },
        );
        let report = server.serve_trace(&trace);
        report
            .responses
            .iter()
            .map(|r| r.generated.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce identical generations"
    );
}

#[test]
fn dataset_prompts_are_consumable_by_models() {
    // Vocabulary compatibility across crates: dataset prompts (vocab 256)
    // must feed models built with vocab 256 without panicking.
    let grammar = Grammar::synthetic(256, 3);
    let llm = Transformer::from_seed(tiny_cfg(16), 6);
    for dataset in Dataset::all() {
        let prompts = dataset.prompts(&grammar, 2, 8, 4, 1);
        for p in prompts {
            let logits = llm.logits_for_sequence(&p.tokens);
            assert!(logits.data().iter().all(|v| v.is_finite()));
        }
    }
}
