//! Cross-crate integration tests of the lossless-acceleration guarantee:
//! greedy tree-based speculative decoding must produce *exactly* the
//! sequence incremental decoding produces, for any SSM, while using no
//! more LLM steps.

use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::spec::{EngineConfig, InferenceMode, SpecEngine, StochasticVerifier};
use specinfer::tokentree::ExpansionConfig;
use specinfer::workloads::EOS_TOKEN;

fn engine_config(mode: InferenceMode) -> EngineConfig {
    EngineConfig {
        decode: DecodeMode::Greedy,
        verifier: StochasticVerifier::MultiStep,
        mode,
        max_new_tokens: 32,
        eos_token: None,
    }
}

#[test]
fn greedy_tree_speculation_is_lossless_across_seeds_and_ssms() {
    for llm_seed in [10u64, 11, 12] {
        let llm = Transformer::from_seed(ModelConfig::smoke(), llm_seed);
        let incremental = SpecEngine::new(&llm, vec![], engine_config(InferenceMode::Incremental))
            .generate(&[1, 2, 3, 4], 0);
        for ssm_seed in [20u64, 21] {
            let ssm = Transformer::from_seed(
                ModelConfig {
                    d_model: 8,
                    n_heads: 2,
                    n_layers: 1,
                    d_ff: 16,
                    ..ModelConfig::smoke()
                },
                ssm_seed,
            );
            for expansion in [
                ExpansionConfig::sequence(5),
                ExpansionConfig::new(vec![2, 2, 1]),
                ExpansionConfig::paper_default(),
            ] {
                let spec = SpecEngine::new(
                    &llm,
                    vec![&ssm],
                    engine_config(InferenceMode::TreeSpeculative {
                        expansion: expansion.clone(),
                    }),
                )
                .generate(&[1, 2, 3, 4], 0);
                let n = incremental.generated().len().min(spec.generated().len());
                assert_eq!(
                    &incremental.generated()[..n],
                    &spec.generated()[..n],
                    "llm {llm_seed}, ssm {ssm_seed}, expansion {expansion}: output diverged"
                );
                assert!(
                    spec.llm_steps() <= incremental.llm_steps(),
                    "speculation must never add LLM steps"
                );
            }
        }
    }
}

#[test]
fn merged_multi_ssm_speculation_is_also_lossless() {
    let llm = Transformer::from_seed(ModelConfig::smoke(), 30);
    let ssm_cfg = ModelConfig {
        d_model: 8,
        n_heads: 2,
        n_layers: 1,
        d_ff: 16,
        ..ModelConfig::smoke()
    };
    let s1 = Transformer::from_seed(ssm_cfg.clone(), 31);
    let s2 = Transformer::from_seed(ssm_cfg.clone(), 32);
    let s3 = Transformer::from_seed(ssm_cfg, 33);

    let incremental = SpecEngine::new(&llm, vec![], engine_config(InferenceMode::Incremental))
        .generate(&[7, 5, 3], 0);
    let merged = SpecEngine::new(
        &llm,
        vec![&s1, &s2, &s3],
        engine_config(InferenceMode::SequenceSpeculative { depth: 6 }),
    )
    .generate(&[7, 5, 3], 0);
    let n = incremental.generated().len().min(merged.generated().len());
    assert_eq!(&incremental.generated()[..n], &merged.generated()[..n]);
}

#[test]
fn eos_convention_is_consistent_across_crates() {
    // `EngineConfig::greedy_tree` hard-codes the workloads EOS so the two
    // crates stay decoupled; this pin breaks if either side drifts.
    let cfg = EngineConfig::greedy_tree();
    assert_eq!(cfg.eos_token, Some(EOS_TOKEN));
}

#[test]
fn speculation_accepts_more_with_a_better_ssm() {
    // The LLM speculating for itself accepts everything; a random SSM
    // accepts less. This orders tokens/step as alignment orders it.
    let llm = Transformer::from_seed(ModelConfig::smoke(), 40);
    let random_ssm = Transformer::from_seed(
        ModelConfig {
            d_model: 8,
            n_heads: 2,
            n_layers: 1,
            d_ff: 16,
            ..ModelConfig::smoke()
        },
        41,
    );
    let cfg = engine_config(InferenceMode::SequenceSpeculative { depth: 6 });
    let self_spec = SpecEngine::new(&llm, vec![&llm], cfg.clone()).generate(&[9, 8, 7], 0);
    let rand_spec = SpecEngine::new(&llm, vec![&random_ssm], cfg).generate(&[9, 8, 7], 0);
    assert!(self_spec.tokens_per_step() >= rand_spec.tokens_per_step());
    assert!(
        (self_spec.tokens_per_step() - 7.0).abs() < 1e-9,
        "self-speculation accepts all"
    );
}
