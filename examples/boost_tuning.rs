//! Boost-tuning a pool of diverse SSMs and merge-based speculation.
//!
//! Reproduces §3's pipeline end to end: train an LLM, then boost-tune a
//! pool of SSMs on the LLM's own generations — each round training on
//! the prompts the previous SSMs failed to cover — and show that the
//! *merged* token trees of the pool verify more tokens per step than any
//! single SSM.
//!
//! ```text
//! cargo run --release --example boost_tuning
//! ```

use specinfer::model::train::train_step;
use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::spec::{
    boost_tune_pool, BoostConfig, EngineConfig, InferenceMode, SpecEngine, StochasticVerifier,
};
use specinfer::tensor::optim::Adam;
use specinfer::tensor::rng::SeededRng;
use specinfer::workloads::{Dataset, Grammar, EOS_TOKEN};

fn main() {
    let grammar = Grammar::synthetic(256, 42);
    let corpus = grammar.training_corpus(160, 40, 7);

    eprintln!("training the LLM…");
    let mut llm = Transformer::from_seed(ModelConfig::tiny_llm(), 1);
    let mut opt = Adam::new(3e-3);
    for _ in 0..2 {
        for chunk in corpus.chunks(8) {
            let _ = train_step(&mut llm, &mut opt, chunk);
        }
    }

    // Boost-tune a pool of three SSMs on LLM generations.
    eprintln!("boost-tuning the SSM pool…");
    let mut rng = SeededRng::new(3);
    let prompts: Vec<Vec<u32>> = (0..64)
        .map(|i| {
            let mut p = grammar.sample_sequence(Some(i % 5), 8, &mut rng);
            p.truncate(9);
            p
        })
        .collect();
    let result = boost_tune_pool(&llm, &prompts, &BoostConfig::small(3));
    println!(
        "per-round coverage of remaining prompts: {:?}",
        result.round_coverage
    );
    println!(
        "union coverage of the pool:              {:.2}",
        result.union_coverage
    );

    // Merge-based speculation: compare pool prefixes.
    let eval = Dataset::Alpaca.prompts(&grammar, 8, 10, 48, 21);
    println!(
        "\n{:18} {:>14} {:>12}",
        "speculator", "tokens/step", "LLM steps"
    );
    for n in 1..=result.ssms.len() {
        let pool: Vec<&Transformer> = result.ssms.iter().take(n).collect();
        let engine = SpecEngine::new(
            &llm,
            pool,
            EngineConfig {
                decode: DecodeMode::Greedy,
                verifier: StochasticVerifier::MultiStep,
                mode: InferenceMode::SequenceSpeculative { depth: 8 },
                max_new_tokens: 48,
                eos_token: Some(EOS_TOKEN),
            },
        );
        let mut tps = 0.0;
        let mut steps = 0usize;
        for (pi, p) in eval.iter().enumerate() {
            let r = engine.generate(&p.tokens, 100 + pi as u64);
            tps += r.tokens_per_step();
            steps += r.llm_steps();
        }
        println!(
            "{:18} {:>14.2} {:>12}",
            format!("{n} merged SSM(s)"),
            tps / eval.len() as f64,
            steps
        );
    }
    println!("\n(merged token trees from diverse SSMs cover more of the LLM's output)");
}
