//! Offloading-based inference: serving a model bigger than GPU memory.
//!
//! Reproduces the Figure 8 scenario interactively: OPT-13B and OPT-30B
//! weights live in CPU DRAM and stream over PCIe every decoding step.
//! Because that stream dominates the step cost, every extra token
//! verified per step is nearly free — tree speculation's best case.
//!
//! ```text
//! cargo run --release --example offloading
//! ```

use specinfer::model::train::{distill_step, train_step};
use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::serving::{QueuePolicy, Server, ServerConfig, TimingConfig};
use specinfer::sim::{ClusterSpec, LlmProfile, OffloadSpec, ParallelismPlan, SystemProfile};
use specinfer::spec::{DegradationPolicy, EngineConfig, InferenceMode, StochasticVerifier};
use specinfer::tensor::optim::Adam;
use specinfer::tokentree::ExpansionConfig;
use specinfer::workloads::{trace::Trace, Dataset, Grammar, EOS_TOKEN};

fn main() {
    let grammar = Grammar::synthetic(256, 42);
    let corpus = grammar.training_corpus(160, 40, 7);

    eprintln!("training models…");
    let mut llm = Transformer::from_seed(ModelConfig::tiny_llm(), 1);
    let mut opt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = train_step(&mut llm, &mut opt, chunk);
    }
    let mut ssm = Transformer::from_seed(ModelConfig::tiny_ssm(), 2);
    let mut sopt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = distill_step(&mut ssm, &mut sopt, &llm, chunk);
    }

    let trace = Trace::closed_batch(&grammar, Dataset::Cip, 4, 10, 32, 5);

    println!(
        "{:10} {:22} {:>14} {:>12}",
        "model", "system", "s/token", "tokens/step"
    );
    for profile in [LlmProfile::opt_13b(), LlmProfile::opt_30b()] {
        for (label, mode, system) in [
            (
                "FlexGen (incremental)",
                InferenceMode::Incremental,
                SystemProfile::flexgen(),
            ),
            (
                "SpecInfer (tree)",
                InferenceMode::TreeSpeculative {
                    expansion: ExpansionConfig::paper_default(),
                },
                SystemProfile::specinfer(),
            ),
        ] {
            let ssms: Vec<&Transformer> = if matches!(mode, InferenceMode::Incremental) {
                vec![]
            } else {
                vec![&ssm]
            };
            let server = Server::new(
                &llm,
                ssms,
                ServerConfig {
                    engine: EngineConfig {
                        decode: DecodeMode::Greedy,
                        verifier: StochasticVerifier::MultiStep,
                        mode: mode.clone(),
                        max_new_tokens: 32,
                        eos_token: Some(EOS_TOKEN),
                    },
                    max_batch_size: 4,
                    timing: TimingConfig {
                        llm_profile: profile.clone(),
                        ssm_profile: LlmProfile::opt_125m(),
                        cluster: ClusterSpec::g5_single_gpu(),
                        plan: ParallelismPlan::single(),
                        system,
                        offload: Some(OffloadSpec::a10_pcie()),
                    },
                    seed: 11,
                    faults: None,
                    degradation: DegradationPolicy::serving_default(),
                    queue: QueuePolicy::unbounded(),
                    slab_rows: None,
                },
            );
            let report = server.serve_trace(&trace);
            println!(
                "{:10} {:22} {:>14.3} {:>12.2}",
                profile.name,
                label,
                report.mean_per_token_latency_s(),
                report.mean_tokens_per_step()
            );
        }
    }
    println!("\n(one simulated A10 24GB; weights stream from CPU DRAM over PCIe Gen4)");
}
