//! Quickstart: tree-based speculative inference in ~60 lines.
//!
//! Builds a tiny "LLM" and a smaller "SSM", trains them briefly on a
//! synthetic language so they align, then generates with both ordinary
//! incremental decoding and SpecInfer's tree-based speculative decoding —
//! and checks the two outputs are *identical* (greedy speculative
//! decoding is lossless) while the speculative run used far fewer LLM
//! passes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use specinfer::model::train::{distill_step, train_step};
use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::spec::{EngineConfig, InferenceMode, SpecEngine, StochasticVerifier};
use specinfer::tensor::optim::Adam;
use specinfer::tokentree::ExpansionConfig;
use specinfer::workloads::{Dataset, Grammar, EOS_TOKEN};

fn main() {
    // A seeded synthetic language: the corpus both models learn.
    let grammar = Grammar::synthetic(256, 42);
    let corpus = grammar.training_corpus(160, 40, 7);

    println!(
        "training the LLM ({} params)…",
        ModelConfig::tiny_llm().param_count()
    );
    let mut llm = Transformer::from_seed(ModelConfig::tiny_llm(), 1);
    let mut opt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = train_step(&mut llm, &mut opt, chunk);
    }

    println!(
        "distilling the SSM ({} params)…",
        ModelConfig::tiny_ssm().param_count()
    );
    let mut ssm = Transformer::from_seed(ModelConfig::tiny_ssm(), 2);
    let mut sopt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = distill_step(&mut ssm, &mut sopt, &llm, chunk);
    }

    // A prompt from the Alpaca-stand-in dataset.
    let prompt = &Dataset::Alpaca.prompts(&grammar, 1, 10, 64, 3)[0];

    let incremental = SpecEngine::new(
        &llm,
        vec![],
        EngineConfig {
            decode: DecodeMode::Greedy,
            verifier: StochasticVerifier::MultiStep,
            mode: InferenceMode::Incremental,
            max_new_tokens: 64,
            eos_token: Some(EOS_TOKEN),
        },
    )
    .generate(&prompt.tokens, 0);

    let speculative = SpecEngine::new(
        &llm,
        vec![&ssm],
        EngineConfig {
            decode: DecodeMode::Greedy,
            verifier: StochasticVerifier::MultiStep,
            mode: InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::paper_default(),
            },
            max_new_tokens: 64,
            eos_token: Some(EOS_TOKEN),
        },
    )
    .generate(&prompt.tokens, 0);

    println!(
        "\nincremental : {} tokens in {} LLM steps",
        incremental.generated().len(),
        incremental.llm_steps()
    );
    println!(
        "tree-spec   : {} tokens in {} LLM steps ({:.2} tokens/step)",
        speculative.generated().len(),
        speculative.llm_steps(),
        speculative.tokens_per_step()
    );

    let n = incremental
        .generated()
        .len()
        .min(speculative.generated().len());
    assert_eq!(
        &incremental.generated()[..n],
        &speculative.generated()[..n],
        "greedy speculative decoding must be lossless"
    );
    println!(
        "\noutputs identical ✓ — speculative decoding used {} fewer LLM passes",
        incremental
            .llm_steps()
            .saturating_sub(speculative.llm_steps())
    );
}
