//! Chatbot serving: continuous batching over a Poisson arrival trace.
//!
//! Spins up the serving engine (iteration-level scheduling, as in Orca)
//! over a mixed-dataset request trace and compares three inference
//! modes — incremental decoding, sequence-based speculation, and
//! SpecInfer's tree-based speculation — on the simulated LLaMA-7B /
//! single-A10 deployment.
//!
//! ```text
//! cargo run --release --example chatbot_serving
//! ```

use specinfer::model::train::{distill_step, train_step};
use specinfer::model::{DecodeMode, ModelConfig, Transformer};
use specinfer::serving::{QueuePolicy, Server, ServerConfig, TimingConfig};
use specinfer::spec::{DegradationPolicy, EngineConfig, InferenceMode, StochasticVerifier};
use specinfer::tensor::optim::Adam;
use specinfer::tokentree::ExpansionConfig;
use specinfer::workloads::{trace::Trace, Grammar, EOS_TOKEN};

fn main() {
    let grammar = Grammar::synthetic(256, 42);
    let corpus = grammar.training_corpus(160, 40, 7);

    eprintln!("training models…");
    let mut llm = Transformer::from_seed(ModelConfig::tiny_llm(), 1);
    let mut opt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = train_step(&mut llm, &mut opt, chunk);
    }
    let mut ssm = Transformer::from_seed(ModelConfig::tiny_ssm(), 2);
    let mut sopt = Adam::new(3e-3);
    for chunk in corpus.chunks(8) {
        let _ = distill_step(&mut ssm, &mut sopt, &llm, chunk);
    }

    // 24 requests arriving at ~20 req/s, mixing all five datasets.
    let trace = Trace::poisson(&grammar, 24, 20.0, 10, 48, 99);

    let modes: Vec<(&str, InferenceMode)> = vec![
        ("incremental", InferenceMode::Incremental),
        (
            "sequence-spec",
            InferenceMode::SequenceSpeculative { depth: 8 },
        ),
        (
            "tree-spec",
            InferenceMode::TreeSpeculative {
                expansion: ExpansionConfig::paper_default(),
            },
        ),
    ];

    println!(
        "{:14} {:>12} {:>12} {:>14} {:>12}",
        "mode", "p50 lat (s)", "ms/token", "tokens/step", "makespan (s)"
    );
    for (name, mode) in modes {
        let ssms: Vec<&Transformer> = if matches!(mode, InferenceMode::Incremental) {
            vec![]
        } else {
            vec![&ssm]
        };
        let server = Server::new(
            &llm,
            ssms,
            ServerConfig {
                engine: EngineConfig {
                    decode: DecodeMode::Greedy,
                    verifier: StochasticVerifier::MultiStep,
                    mode,
                    max_new_tokens: 48,
                    eos_token: Some(EOS_TOKEN),
                },
                max_batch_size: 8,
                timing: TimingConfig::llama_7b_single_gpu(),
                seed: 7,
                faults: None,
                degradation: DegradationPolicy::serving_default(),
                queue: QueuePolicy::unbounded(),
                slab_rows: None,
            },
        );
        let report = server.serve_trace(&trace);
        let mut lats: Vec<f64> = report.responses.iter().map(|r| r.latency_s()).collect();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "{:14} {:>12.3} {:>12.2} {:>14.2} {:>12.2}",
            name,
            lats[lats.len() / 2],
            report.mean_per_token_latency_s() * 1e3,
            report.mean_tokens_per_step(),
            report.makespan_s
        );
    }
    println!("\n(simulated LLaMA-7B on one A10; token behaviour measured on the tiny models)");
}
